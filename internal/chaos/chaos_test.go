package chaos

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/client"
	"redbud/internal/clock"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/obs/agg"
	"redbud/internal/proto"
	"redbud/internal/rpc"
	"redbud/internal/workload"
)

// seeds widens the invariant sweep; CI runs `-seeds=100` nightly.
var seeds = flag.Int("seeds", 5, "number of fault-plan seeds the invariant sweep runs")

// invariantConfig is the full fault menu: drops, duplicates, delays,
// reorders, a timed partition, and probabilistic data-device faults.
func invariantConfig(seed int64) Config {
	return Config{
		Seed:    seed,
		Clients: 3,
		Threads: 2,
		Ops:     25,
		Prefill: 2,
		Mode:    client.DelayedCommit,
		Fsync:   true,
		Retry: client.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   time.Millisecond,
			MaxDelay:    8 * time.Millisecond,
			CallTimeout: 50 * time.Millisecond,
		},
		Net: netsim.FaultPlan{
			Default: netsim.LinkFaults{
				DropProb:    0.02,
				DupProb:     0.02,
				DelayProb:   0.10,
				DelaySpike:  2 * time.Millisecond,
				ReorderProb: 0.05,
			},
			Partitions: []netsim.Partition{
				{From: "*", To: "mds", Start: 20 * time.Millisecond, End: 35 * time.Millisecond},
			},
		},
		Disk: DiskFaults{ErrProb: 0.02, TornProb: 0.02},
	}
}

// assertClean checks the two paper invariants and every fsck pass: each
// shard's live and recovered image, plus the cross-shard referential checks
// in a sharded run.
func assertClean(t *testing.T, rep *Report) {
	t.Helper()
	if len(rep.Violations) != 0 {
		t.Errorf("ordered-write violations:\n  %s", strings.Join(rep.Violations, "\n  "))
	}
	if len(rep.Inconsistent) != 0 {
		t.Errorf("committed-but-not-durable extents at end of run: %+v", rep.Inconsistent)
	}
	for i, f := range rep.ShardFscks {
		if !f.OK() {
			t.Errorf("live fsck, shard %d: %s", i, f)
		}
	}
	for i, f := range rep.RecoveredShardFscks {
		if !f.OK() {
			t.Errorf("post-recovery fsck, shard %d: %s", i, f)
		}
	}
	if len(rep.ClusterIssues) != 0 {
		t.Errorf("cross-shard fsck: %s", strings.Join(rep.ClusterIssues, "; "))
	}
	if len(rep.RecoveredClusterIssues) != 0 {
		t.Errorf("post-recovery cross-shard fsck: %s", strings.Join(rep.RecoveredClusterIssues, "; "))
	}
}

// TestChaosInvariants sweeps seeded fault plans and asserts that no plan can
// produce an MDS-visible commit of non-durable data, an inconsistent store,
// or an unrecoverable journal. Individual operations may fail — that is the
// fault plan working — but the metadata must never lie.
func TestChaosInvariants(t *testing.T) {
	for s := 0; s < *seeds; s++ {
		seed := int64(s)*7919 + 1
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(invariantConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			assertClean(t, rep)
			var ops int64
			for _, r := range rep.Results {
				ops += r.Ops
			}
			if ops > 0 && rep.OpErrors >= ops {
				t.Errorf("every one of %d ops failed; the fault plan starved the workload", ops)
			}
			t.Logf("ops=%d opErrors=%d netFaults=%+v diskFaults=%d dedupHits=%d",
				ops, rep.OpErrors, rep.Faults, rep.DiskFaults, rep.DedupHits)
		})
	}
}

// TestChaosMDSRestart crash-restarts the MDS twice mid-workload with no
// other faults: clients must redial, observe the incarnation bump, rebuild
// their sessions, and keep making progress; the recovered store must fsck
// clean both times and at the end.
func TestChaosMDSRestart(t *testing.T) {
	cfg := invariantConfig(4242)
	cfg.Net = netsim.FaultPlan{}
	cfg.Disk = DiskFaults{}
	cfg.Ops = 40
	cfg.Think = time.Millisecond // stretch the workload across the restarts
	cfg.Restarts = 2
	cfg.RestartEvery = 15 * time.Millisecond
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 2 {
		t.Fatalf("completed %d restarts, want 2", rep.Restarts)
	}
	assertClean(t, rep)
	var ops int64
	for _, r := range rep.Results {
		ops += r.Ops
	}
	if want := int64(cfg.Clients * cfg.Threads * cfg.Ops); ops != want {
		t.Fatalf("measured %d ops, want %d: a thread died instead of retrying", ops, want)
	}
	if rep.OpErrors >= ops {
		t.Fatalf("all %d ops failed across the restarts; sessions never re-established", ops)
	}
	t.Logf("ops=%d opErrors=%d dedupHits=%d recovery=%+v", ops, rep.OpErrors, rep.DedupHits, rep.Recovery)
}

// TestChaosAutoscaleMDSRestart is the MDS-restart scenario with the commit
// autoscaler v2 engaged: the control loop samples queue wait and RPC
// in-flight while connections die and sessions rebuild, and must never
// deadlock the commit path — every thread finishes its ops and the store
// fscks clean, exactly as under the static formula.
func TestChaosAutoscaleMDSRestart(t *testing.T) {
	cfg := invariantConfig(31415)
	cfg.Net = netsim.FaultPlan{}
	cfg.Disk = DiskFaults{}
	cfg.Ops = 40
	cfg.Think = time.Millisecond // stretch the workload across the restarts
	cfg.Restarts = 2
	cfg.RestartEvery = 15 * time.Millisecond
	cfg.Autoscale = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 2 {
		t.Fatalf("completed %d restarts, want 2", rep.Restarts)
	}
	assertClean(t, rep)
	var ops int64
	for _, r := range rep.Results {
		ops += r.Ops
	}
	if want := int64(cfg.Clients * cfg.Threads * cfg.Ops); ops != want {
		t.Fatalf("measured %d ops, want %d: a commit thread deadlocked instead of retrying", ops, want)
	}
	t.Logf("ops=%d opErrors=%d recovery=%+v", ops, rep.OpErrors, rep.Recovery)
}

// TestChaosDeterminism runs the same seed and fault plan twice and requires
// byte-identical per-thread event logs. The plan is delay-only and retries
// are disabled: delays never change an operation's outcome, so the op
// streams — which do depend on outcomes — must replay exactly.
func TestChaosDeterminism(t *testing.T) {
	eventLog := func() (string, int64) {
		var mu sync.Mutex
		logs := map[int][]string{}
		cfg := Config{
			Seed:    99,
			Clients: 2,
			Threads: 2,
			Ops:     20,
			Prefill: 2,
			Mode:    client.DelayedCommit,
			Fsync:   true,
			// One attempt, no call timeout: nothing scheduler-dependent
			// can change an op's outcome.
			Retry: client.RetryPolicy{MaxAttempts: 1},
			Net: netsim.FaultPlan{
				Default: netsim.LinkFaults{DelayProb: 0.3, DelaySpike: 300 * time.Microsecond},
			},
			OnOp: func(clientID, tid int, kind workload.OpKind, path string, n int64) {
				key := clientID*1000 + tid
				mu.Lock()
				logs[key] = append(logs[key], fmt.Sprintf("%d %s %s %d", key, kind, path, n))
				mu.Unlock()
			},
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]int, 0, len(logs))
		for k := range logs {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		var sb strings.Builder
		for _, k := range keys {
			for _, line := range logs[k] {
				sb.WriteString(line)
				sb.WriteByte('\n')
			}
		}
		return sb.String(), rep.OpErrors
	}
	logA, errsA := eventLog()
	logB, errsB := eventLog()
	if errsA != 0 || errsB != 0 {
		t.Fatalf("delay-only runs had op errors (%d, %d): an outcome-affecting fault leaked into the determinism fixture", errsA, errsB)
	}
	if logA == "" {
		t.Fatal("event log is empty; OnOp never fired")
	}
	if logA != logB {
		t.Fatalf("same seed and plan produced different event logs:\nrun A:\n%srun B:\n%s", logA, logB)
	}
}

// writerCrashRun is one seed of the early-visibility writer-crash scenario:
// a delayed-commit writer streams chunks into a file and crashes at a
// seed-chosen point — after publishing allocation intents, before committing
// some of them — while an early-visibility reader polls the same file the
// whole time. Two oracles run on every reader observation:
//
//  1. Content: every observed byte is either zero (never written) or the
//     writer's pattern byte — never garbage, never a torn mix.
//  2. Durability: any observed non-zero byte that an intent maps to the data
//     device must be durable there at (or before) observation time; device
//     durability grows monotonically, so checking after the read is sound.
//
// After the crash the MDS lease expiry reaps the writer: its intents roll
// back, and a fresh early-visibility reader may see only the committed
// prefix — which must match the pattern exactly. The store must fsck clean.
func writerCrashRun(t *testing.T, seed int64) {
	const (
		fileSize  = 64 << 10
		chunk     = 4 << 10
		chunks    = fileSize / chunk
		leaseTime = 2 * time.Millisecond
	)
	clk := clock.Real(1)
	data := blockdev.New(blockdev.Config{Size: dataSpace, Model: blockdev.FastHDD(), Clock: clk})
	defer data.Close()
	metaDev := blockdev.New(blockdev.Config{Size: metaSpace, Model: blockdev.ZeroLatency(), Clock: clk})
	defer metaDev.Close()
	store := meta.NewStore(meta.Config{
		AGs:     alloc.NewUniformAGSet(alloc.RoundRobin, 0, dataSpace, allocGroups),
		Journal: meta.NewJournal(metaDev, 0, journalSize),
		Clock:   clk,
	})
	var vmu sync.Mutex
	var violations []string
	srv := mds.New(mds.Config{
		Store:        store,
		Clock:        clk,
		Daemons:      4,
		LeaseTimeout: leaseTime,
		CommitCheck: func(exts []meta.Extent) error {
			for _, e := range exts {
				if e.Dev != 0 || !data.IsDurable(e.VolOff, e.Len) {
					msg := fmt.Sprintf("commit references non-durable extent dev%d [%d,+%d)", e.Dev, e.VolOff, e.Len)
					vmu.Lock()
					violations = append(violations, msg)
					vmu.Unlock()
					return fmt.Errorf("chaos: %s", msg)
				}
			}
			return nil
		},
	})
	defer srv.Close()
	net := netsim.NewNetwork(clk)
	net.AddHost("mds", netsim.Instant())
	lis, err := net.Listen("mds")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer lis.Close()

	mount := func(name string, early bool, mode client.Mode) *client.Client {
		net.AddHost(name, netsim.Instant())
		conn, err := net.Dial(name, "mds")
		if err != nil {
			t.Fatal(err)
		}
		return client.New(client.Config{
			Name:            name,
			MDS:             rpc.NewClient(conn, clk),
			Devices:         map[uint32]client.BlockDevice{0: data},
			Clock:           clk,
			Mode:            mode,
			PoolInterval:    time.Millisecond,
			EarlyVisibility: early,
		})
	}
	writer := mount("wc-writer", false, client.DelayedCommit)
	reader := mount("wc-reader", true, client.SyncCommit)
	defer reader.Close()

	pat := make([]byte, fileSize)
	for i := range pat {
		pat[i] = byte(i)*7 + byte(seed) + 1
	}
	wf, err := writer.Create("/wc.dat")
	if err != nil {
		t.Fatal(err)
	}
	attr, err := store.Lookup(meta.RootID, "wc.dat")
	if err != nil {
		t.Fatal(err)
	}

	// The reader polls until told to stop, running both oracles per poll.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	observations := 0
	go func() {
		defer rwg.Done()
		rf, err := reader.Open("/wc.dat")
		if err != nil {
			t.Error(err)
			return
		}
		defer rf.Close()
		buf := make([]byte, fileSize)
		for {
			select {
			case <-stop:
				return
			default:
			}
			n, err := rf.ReadAt(buf, 0)
			if err != nil {
				continue
			}
			for j := 0; j < n; j++ {
				if buf[j] != 0 && buf[j] != pat[j] {
					t.Errorf("seed %d: reader observed garbage byte %#x at %d (want 0 or %#x)", seed, buf[j], j, pat[j])
					return
				}
			}
			if n > 0 {
				observations++
			}
			// Durability oracle: map observed non-zero bytes back to the
			// device through the live intent/extent view. Extents rolled
			// back between the read and this lookup simply drop out — the
			// bytes they carried were durable when the device served them.
			lay, lerr := store.GetLayout(attr.ID, 0, fileSize, meta.LayoutWantUncommitted)
			if lerr != nil {
				continue
			}
			for _, e := range lay.Extents {
				hi := e.FileOff + e.Len
				if hi > int64(n) {
					hi = int64(n)
				}
				for j := e.FileOff; j < hi; j++ {
					if buf[j] != 0 && !data.IsDurable(e.VolOff+(j-e.FileOff), 1) {
						t.Errorf("seed %d: observed non-durable byte at file offset %d (dev off %d)", seed, j, e.VolOff+(j-e.FileOff))
						return
					}
				}
			}
			clk.Sleep(100 * time.Microsecond)
		}
	}()

	// The writer streams chunks and crashes at a seed-derived cut point:
	// everything before the cut was handed to the commit pool, but the crash
	// races the pool, so a seed-dependent suffix dies as published intents.
	cut := 1 + int(uint64(seed)*2654435761%uint64(chunks-1))
	for i := 0; i < cut; i++ {
		if _, err := wf.WriteAt(pat[i*chunk:(i+1)*chunk], int64(i*chunk)); err != nil {
			t.Fatalf("seed %d: write %d: %v", seed, i, err)
		}
		clk.Sleep(50 * time.Microsecond)
	}
	writer.Crash()

	// Lease expiry reaps the dead writer: rollback of every intent it had
	// published but not committed. The reader keeps polling throughout.
	clk.Sleep(4 * leaseTime)
	srv.ExpireLeases()
	clk.Sleep(time.Millisecond)
	close(stop)
	rwg.Wait()

	// Post-rollback: a fresh early-visibility mount sees only the committed
	// prefix, and it matches the pattern byte for byte.
	fresh := mount("wc-fresh", true, client.SyncCommit)
	defer fresh.Close()
	ff, err := fresh.Open("/wc.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer ff.Close()
	buf := make([]byte, fileSize)
	n, err := ff.ReadAt(buf, 0)
	if err != nil {
		t.Fatalf("seed %d: post-crash read: %v", seed, err)
	}
	for j := 0; j < n; j++ {
		if buf[j] != 0 && buf[j] != pat[j] {
			t.Fatalf("seed %d: post-rollback byte %d = %#x, want 0 or %#x", seed, j, buf[j], pat[j])
		}
	}
	if len(violations) != 0 {
		t.Fatalf("seed %d: ordered-write violations: %s", seed, strings.Join(violations, "; "))
	}
	if bad := store.CheckConsistent(func(dev int, off, n int64) bool {
		return dev == 0 && data.IsDurable(off, n)
	}); len(bad) != 0 {
		t.Fatalf("seed %d: %d committed extents without durable data", seed, len(bad))
	}
	if fsck := store.Fsck(dataSpace); !fsck.OK() {
		t.Fatalf("seed %d: post-rollback fsck: %s", seed, fsck)
	}
	t.Logf("seed %d: cut=%d/%d chunks, reader observations=%d", seed, cut, chunks, observations)
}

// TestChaosWriterCrashEarlyVisibility sweeps the writer-crash scenario over
// the seed range; the nightly job widens it to 100 seeds with -race.
func TestChaosWriterCrashEarlyVisibility(t *testing.T) {
	for s := 0; s < *seeds; s++ {
		seed := int64(s)*104729 + 3
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			writerCrashRun(t, seed)
		})
	}
}

// shardedConfig is the sharded counterpart of invariantConfig: four MDS
// shards under the full fault menu — drops, duplicates, delays, reorders, a
// timed partition of one shard, probabilistic data-device faults — plus two
// mid-run crash-restarts of seed-chosen shards. Creates and removes whose
// placement hash separates child from parent run the two-phase cross-shard
// protocols under all of it.
func shardedConfig(seed int64) Config {
	cfg := invariantConfig(seed)
	cfg.Shards = 4
	cfg.Think = 500 * time.Microsecond // stretch the workload across the restarts
	cfg.Restarts = 2
	cfg.RestartEvery = 10 * time.Millisecond
	cfg.Net.Partitions = []netsim.Partition{
		{From: "*", To: "mds1", Start: 20 * time.Millisecond, End: 35 * time.Millisecond},
	}
	return cfg
}

// TestChaosShardedInvariants sweeps seeded fault plans over the sharded
// topology: no plan — including killing a random shard mid-run, possibly
// mid-cross-shard-protocol — may yield an undurable commit, an inconsistent
// shard, a cross-shard referential break, or an unrecoverable journal.
func TestChaosShardedInvariants(t *testing.T) {
	for s := 0; s < *seeds; s++ {
		seed := int64(s)*6151 + 11
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(shardedConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			assertClean(t, rep)
			var ops int64
			for _, r := range rep.Results {
				ops += r.Ops
			}
			if ops > 0 && rep.OpErrors >= ops {
				t.Errorf("every one of %d ops failed; the fault plan starved the workload", ops)
			}
			t.Logf("ops=%d opErrors=%d restartedShards=%v netFaults=%+v diskFaults=%d dedupHits=%d",
				ops, rep.OpErrors, rep.RestartedShards, rep.Faults, rep.DiskFaults, rep.DedupHits)
		})
	}
}

// TestChaosShardedRestart crash-restarts seed-chosen shards three times
// mid-workload with no other faults: clients must redial the dead shard,
// observe its incarnation bump, re-establish only the session state homed
// there, and keep making progress on every shard; all shards must fsck clean
// individually and against each other.
func TestChaosShardedRestart(t *testing.T) {
	cfg := shardedConfig(2026)
	cfg.Net = netsim.FaultPlan{}
	cfg.Disk = DiskFaults{}
	cfg.Ops = 40
	cfg.Think = time.Millisecond
	cfg.Restarts = 3
	cfg.RestartEvery = 15 * time.Millisecond
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 3 {
		t.Fatalf("completed %d restarts, want 3", rep.Restarts)
	}
	assertClean(t, rep)
	var ops int64
	for _, r := range rep.Results {
		ops += r.Ops
	}
	if want := int64(cfg.Clients * cfg.Threads * cfg.Ops); ops != want {
		t.Fatalf("measured %d ops, want %d: a thread died instead of retrying", ops, want)
	}
	if rep.OpErrors >= ops {
		t.Fatalf("all %d ops failed across the restarts; sessions never re-established", ops)
	}
	t.Logf("ops=%d opErrors=%d restartedShards=%v dedupHits=%d", ops, rep.OpErrors, rep.RestartedShards, rep.DedupHits)
}

// TestChaosShardedDeterminism is the run-twice determinism check for the
// sharded topology: same seed, delay-only plan, no retries — the per-thread
// event logs of two runs must be byte-identical even though ops now fan out
// over two shards and the cross-shard protocols.
func TestChaosShardedDeterminism(t *testing.T) {
	eventLog := func() (string, int64) {
		var mu sync.Mutex
		logs := map[int][]string{}
		cfg := Config{
			Seed:    271,
			Shards:  2,
			Clients: 2,
			Threads: 2,
			Ops:     20,
			Prefill: 2,
			Mode:    client.DelayedCommit,
			Fsync:   true,
			Retry:   client.RetryPolicy{MaxAttempts: 1},
			Net: netsim.FaultPlan{
				Default: netsim.LinkFaults{DelayProb: 0.3, DelaySpike: 300 * time.Microsecond},
			},
			OnOp: func(clientID, tid int, kind workload.OpKind, path string, n int64) {
				key := clientID*1000 + tid
				mu.Lock()
				logs[key] = append(logs[key], fmt.Sprintf("%d %s %s %d", key, kind, path, n))
				mu.Unlock()
			},
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertClean(t, rep)
		keys := make([]int, 0, len(logs))
		for k := range logs {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		var sb strings.Builder
		for _, k := range keys {
			for _, line := range logs[k] {
				sb.WriteString(line)
				sb.WriteByte('\n')
			}
		}
		return sb.String(), rep.OpErrors
	}
	logA, errsA := eventLog()
	logB, errsB := eventLog()
	if errsA != 0 || errsB != 0 {
		t.Fatalf("delay-only sharded runs had op errors (%d, %d): an outcome-affecting fault leaked into the determinism fixture", errsA, errsB)
	}
	if logA == "" {
		t.Fatal("event log is empty; OnOp never fired")
	}
	if logA != logB {
		t.Fatalf("same seed and plan produced different event logs:\nrun A:\n%srun B:\n%s", logA, logB)
	}
}

// TestChaosFaultFreeSLOSilent is the cluster SLO smoke check: a fault-free
// sharded run must end with the full default rule set evaluated and every
// alert inactive — the observability plane may not cry wolf on a healthy
// cluster. It also pins the aggregation contract the rules evaluate against:
// every shard (and the client set) contributes a scraped, shard-tagged
// snapshot, the merge drops nothing, and the merged commit-latency histogram
// covers the run's commits.
func TestChaosFaultFreeSLOSilent(t *testing.T) {
	cfg := shardedConfig(777)
	cfg.Net = netsim.FaultPlan{}
	cfg.Disk = DiskFaults{}
	cfg.Restarts = 0
	cfg.Think = 0
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertClean(t, rep)
	if got, want := len(rep.Alerts), len(agg.DefaultRules()); got != want {
		t.Fatalf("final evaluation covered %d rules, want the full default set of %d", got, want)
	}
	for _, a := range rep.Alerts {
		if a.State != agg.StateInactive {
			t.Errorf("alert %q is %s on a fault-free run (value %g, threshold %s %g)",
				a.Rule.Name, a.State, a.Value, a.Rule.Op, a.Rule.Threshold)
		}
	}
	if len(rep.SLOEvents) != 0 {
		t.Errorf("fault-free run logged %d alert transitions: %+v", len(rep.SLOEvents), rep.SLOEvents)
	}
	if rep.Cluster.Dropped != 0 {
		t.Errorf("merge dropped %d series in a homogeneous cluster", rep.Cluster.Dropped)
	}
	if got, want := len(rep.Cluster.Shards), cfg.Shards+1; got != want {
		t.Fatalf("collection covered %d sources, want %d (every shard plus the clients)", got, want)
	}
	for _, sh := range rep.Cluster.Shards {
		if sh.Err != "" {
			t.Errorf("source %s failed to scrape: %s", sh.Shard, sh.Err)
		}
		if len(sh.Metrics.Metrics) == 0 {
			t.Errorf("source %s contributed no series", sh.Shard)
			continue
		}
		wantTag := fmt.Sprintf("shard=%q", sh.Shard)
		for _, m := range sh.Metrics.Metrics {
			if !strings.Contains(m.Labels, wantTag) {
				t.Errorf("source %s: series %s{%s} is missing its %s tag", sh.Shard, m.Name, m.Labels, wantTag)
				break
			}
		}
	}
	var commits int64
	for _, m := range rep.Cluster.Merged.Metrics {
		if m.Name == "redbud_mds_commit_latency_seconds" && m.Hist != nil {
			commits += m.Hist.Count
		}
	}
	if commits == 0 {
		t.Error("merged commit-latency histogram is empty; shard histograms did not aggregate")
	}
	t.Logf("sources=%d mergedSeries=%d commits=%d alerts all inactive",
		len(rep.Cluster.Shards), len(rep.Cluster.Merged.Metrics), commits)
}

// TestChaosShardedRenameBothShardsCrash drives a cross-shard rename over the
// wire phase by phase and crashes BOTH shards after each prefix of the
// protocol: the client mounts a two-shard cluster and builds the namespace,
// then the test issues the four rename phases as raw RPCs, kills both
// servers, recovers both stores from their journals, and runs intent
// resolution. At every crash point the file must converge to exactly one of
// its two names — the old one before the commit point (phase 3, the source
// dirent delete), the new one after — never both and never neither, with
// both shards fsck-clean and the file's data intact.
func TestChaosShardedRenameBothShardsCrash(t *testing.T) {
	const n = 2
	for stage := 0; stage <= 4; stage++ {
		t.Run(fmt.Sprintf("phases=%d", stage), func(t *testing.T) {
			clk := clock.Real(1)
			net := netsim.NewNetwork(clk)
			dataDevs := make([]*blockdev.Device, n)
			metaDevs := make([]*blockdev.Device, n)
			stores := make([]*meta.Store, n)
			srvs := make([]*mds.Server, n)
			liss := make([]*netsim.Listener, n)
			for i := 0; i < n; i++ {
				dataDevs[i] = blockdev.New(blockdev.Config{ID: i, Size: dataSpace, Model: blockdev.ZeroLatency(), Clock: clk})
				defer dataDevs[i].Close()
				metaDevs[i] = blockdev.New(blockdev.Config{Size: metaSpace, Model: blockdev.ZeroLatency(), Clock: clk})
				defer metaDevs[i].Close()
				stores[i] = meta.NewStore(meta.Config{
					AGs:     alloc.NewUniformAGSet(alloc.RoundRobin, i, dataSpace, allocGroups),
					Journal: meta.NewJournal(metaDevs[i], 0, journalSize), Clock: clk,
					Shard: i, ShardCount: n,
				})
				host := fmt.Sprintf("mds%d", i)
				net.AddHost(host, netsim.Instant())
				srvs[i] = mds.New(mds.Config{Store: stores[i], Clock: clk, Daemons: 2, ShardIndex: uint32(i), ShardCount: n})
				lis, err := net.Listen(host)
				if err != nil {
					t.Fatal(err)
				}
				liss[i] = lis
				go srvs[i].Serve(lis)
			}
			dial := func(from string, shard int) *rpc.Client {
				conn, err := net.Dial(from, fmt.Sprintf("mds%d", shard))
				if err != nil {
					t.Fatal(err)
				}
				return rpc.NewClient(conn, clk)
			}

			// Mount a client and build the fixture: two directories homed on
			// different shards and a synced file under the source one.
			net.AddHost("c0", netsim.Instant())
			conns := make([]*rpc.Client, n)
			for i := range conns {
				conns[i] = dial("c0", i)
			}
			cl := client.New(client.Config{
				Name:   "c0",
				Shards: conns,
				Devices: map[uint32]client.BlockDevice{
					0: dataDevs[0], 1: dataDevs[1],
				},
				Clock: clk,
				Mode:  client.SyncCommit,
			})
			rootStore := stores[meta.ShardOf(meta.RootID, n)]
			var srcID, dstID meta.FileID
			var srcName string
			for i := 0; i < 32 && (srcID == 0 || dstID == 0); i++ {
				name := fmt.Sprintf("d%d", i)
				if err := cl.Mkdir("/" + name); err != nil {
					t.Fatal(err)
				}
				attr, err := rootStore.Lookup(meta.RootID, name)
				if err != nil {
					t.Fatal(err)
				}
				if meta.ShardOf(attr.ID, n) == 0 && srcID == 0 {
					srcID, srcName = attr.ID, name
				} else if meta.ShardOf(attr.ID, n) == 1 && dstID == 0 {
					dstID = attr.ID
				}
			}
			if srcID == 0 || dstID == 0 {
				t.Fatal("placement hash never separated two directories; fixture broken")
			}
			pat := make([]byte, 4096)
			for i := range pat {
				pat[i] = byte(i*13 + stage)
			}
			wf, err := cl.Create("/" + srcName + "/f")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wf.WriteAt(pat, 0); err != nil {
				t.Fatal(err)
			}
			if err := wf.Close(); err != nil {
				t.Fatal(err)
			}
			if err := cl.Close(); err != nil {
				t.Fatal(err)
			}
			fattr, err := stores[meta.ShardOf(srcID, n)].Lookup(srcID, "f")
			if err != nil {
				t.Fatal(err)
			}
			fid := fattr.ID

			// The four phases of renaming src/f -> dst/g, as the client
			// would issue them, against the live servers.
			net.AddHost("probe", netsim.Instant())
			sp, dp := dial("probe", 0), dial("probe", 1)
			phases := []func() error{
				func() error {
					return sp.Call(proto.OpNSPrepare, &proto.NSPrepareReq{
						File: fid, Kind: meta.NSRenameSrc, Type: meta.TypeFile, Parent: srcID, Name: "f"}, nil)
				},
				func() error {
					return dp.Call(proto.OpNSPrepare, &proto.NSPrepareReq{
						File: fid, Kind: meta.NSRenameDst, Type: meta.TypeFile, Parent: srcID, Name: "f",
						DstParent: dstID, DstName: "g"}, nil)
				},
				func() error {
					return sp.Call(proto.OpNSCommit, &proto.NSCommitReq{File: fid, Kind: meta.NSRenameSrc}, nil)
				},
				func() error {
					return dp.Call(proto.OpNSCommit, &proto.NSCommitReq{File: fid, Kind: meta.NSRenameDst}, nil)
				},
			}
			for i := 0; i < stage; i++ {
				if err := phases[i](); err != nil {
					t.Fatalf("phase %d: %v", i+1, err)
				}
			}

			// Crash BOTH shards, recover each from its journal, resolve.
			for i := 0; i < n; i++ {
				liss[i].Close()
				srvs[i].Close()
			}
			sp.Close()
			dp.Close()
			recovered := make([]*meta.Store, n)
			for i := 0; i < n; i++ {
				rec, _, err := meta.Recover(meta.Config{
					AGs:     alloc.NewUniformAGSet(alloc.RoundRobin, i, dataSpace, allocGroups),
					Journal: meta.NewJournal(metaDevs[i], 0, journalSize), Clock: clk,
					Shard: i, ShardCount: n,
				})
				if err != nil {
					t.Fatalf("shard %d recovery: %v", i, err)
				}
				recovered[i] = rec
			}
			if err := meta.ResolveNSIntents(recovered); err != nil {
				t.Fatalf("intent resolution: %v", err)
			}

			wantNew := stage >= 3 // the commit point is the source-dirent delete
			_, oldErr := recovered[meta.ShardOf(srcID, n)].Lookup(srcID, "f")
			_, newErr := recovered[meta.ShardOf(dstID, n)].Lookup(dstID, "g")
			if wantNew {
				if newErr != nil || oldErr == nil {
					t.Fatalf("after %d phases want only dst/g: src err=%v dst err=%v", stage, oldErr, newErr)
				}
			} else {
				if oldErr != nil || newErr == nil {
					t.Fatalf("after %d phases want only src/f: src err=%v dst err=%v", stage, oldErr, newErr)
				}
			}
			attr, err := recovered[meta.ShardOf(fid, n)].GetAttr(fid)
			if err != nil {
				t.Fatalf("file inode lost: %v", err)
			}
			if attr.Size != int64(len(pat)) {
				t.Fatalf("file size %d after recovery, want %d", attr.Size, len(pat))
			}
			for i, rec := range recovered {
				if rep := rec.Fsck(dataSpace); !rep.OK() {
					t.Fatalf("shard %d fsck: %s", i, rep)
				}
			}
			if probs := meta.FsckCluster(recovered); len(probs) != 0 {
				t.Fatalf("cluster fsck: %s", strings.Join(probs, "; "))
			}
			for _, in := range recovered[0].NSIntents() {
				t.Errorf("shard 0 intent survived resolution: %+v", in)
			}
			for _, in := range recovered[1].NSIntents() {
				t.Errorf("shard 1 intent survived resolution: %+v", in)
			}
		})
	}
}
