// Command redbud-trace regenerates Figure 5's blktrace-style disk-seek
// panels and writes one CSV per (configuration, file size) panel:
//
//	redbud-trace -out /tmp/fig5
//
// produces files like /tmp/fig5/seeks-redbud+dc+sd-32KB.csv with rows
// "t_us,offset,seek", ready for any plotting tool.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"redbud/internal/bench"
)

func main() {
	var (
		out     = flag.String("out", "fig5-traces", "output directory for CSV files")
		clients = flag.Int("clients", 7, "number of client nodes")
		scale   = flag.Float64("scale", 0.02, "virtual-time compression in (0, 1]")
		size    = flag.Float64("size", 0.3, "workload size factor in (0, 1]")
	)
	flag.Parse()

	opt := bench.DefaultOptions()
	opt.Clients = *clients
	opt.Scale = *scale
	opt.SizeFactor = *size

	panels, err := bench.Fig5(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig5:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bench.PrintFig5(os.Stdout, panels)
	for _, p := range panels {
		name := fmt.Sprintf("seeks-%s-%s.csv", p.System, sizeLabel(p.FileSize))
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := writeCSV(f, p); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println("wrote", path)
	}
}

func writeCSV(f *os.File, p bench.Fig5Panel) error {
	var sb strings.Builder
	sb.WriteString("t_us,offset,seek\n")
	for _, pt := range p.Series {
		fmt.Fprintf(&sb, "%d,%d,%d\n", pt.T.Microseconds(), pt.Offset, pt.Seek)
	}
	_, err := f.WriteString(sb.String())
	return err
}

func sizeLabel(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMB", n>>20)
	}
	return fmt.Sprintf("%dKB", n>>10)
}
