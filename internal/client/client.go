// Package client implements the Redbud client file system. It speaks the
// metadata protocol to the MDS over RPC, reads and writes file data directly
// on the shared (simulated) disk array, and implements both update modes the
// paper compares:
//
//   - SyncCommit (original Redbud): the application thread writes the data,
//     spins until it is durable, then sends the commit RPC and waits — the
//     ordered write sits on the critical path (§III-A).
//   - DelayedCommit: the data write is issued, a commit task is enqueued
//     (deduplicated per file), and the call returns. Background commit
//     daemons — an adaptive pool sized ThreadNums = ρ·QueueLen — check out
//     files whose data writes completed, pack several commits into one
//     compound RPC, and send them (§III, §IV).
//
// Space delegation (double-space-pool) and the adaptive compound-degree
// controller come from internal/core.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/clock"
	"redbud/internal/core"
	"redbud/internal/fsapi"
	"redbud/internal/meta"
	"redbud/internal/obs"
	"redbud/internal/proto"
	"redbud/internal/rpc"
	"redbud/internal/stats"
	"redbud/internal/wire"
)

// Mode selects the update protocol.
type Mode int

// Update modes.
const (
	SyncCommit Mode = iota
	DelayedCommit
)

func (m Mode) String() string {
	if m == SyncCommit {
		return "sync"
	}
	return "delayed"
}

// PageSize is the client page-cache granularity, matching the paper's
// "typical 4KB page size data".
const PageSize = 4096

// BlockDevice is the client's view of one member of the shared disk array:
// the direct data path the paper routes over fiber channel. Implemented by
// *blockdev.Device in-process and by san.RemoteDevice over the network.
type BlockDevice interface {
	// WriteAsync is writepage: it submits the write and returns a channel
	// that yields once the data is durable.
	WriteAsync(off int64, p []byte) <-chan error
	// Read blocks until n bytes at off have been read.
	Read(off, n int64) ([]byte, error)
}

// Config assembles a client.
type Config struct {
	// Name identifies the client to the MDS (delegation owner, GC).
	Name string
	// MDS is the connected metadata RPC client. The file-system client
	// owns it and closes it on Close.
	MDS *rpc.Client
	// Redial, if set, establishes a replacement MDS connection after the
	// current one dies; combined with Retry it makes the client survive
	// connection loss and MDS restarts.
	Redial func() (*rpc.Client, error)
	// Shards supplies one connected RPC client per MDS shard (index =
	// shard number) of a sharded namespace; when set it replaces MDS. The
	// client routes every inode by meta.ShardOf and verifies each server's
	// hello-advertised shard coordinates against this topology.
	Shards []*rpc.Client
	// RedialShard re-establishes the connection to one shard after it
	// dies; with Shards set it replaces Redial.
	RedialShard func(shard int) (*rpc.Client, error)
	// Retry governs RPC timeouts and idempotent-retry backoff.
	Retry RetryPolicy
	// Devices maps device IDs to the shared disk array members.
	Devices map[uint32]BlockDevice
	Clock   clock.Clock
	Mode    Mode

	// MaxCommitThreads is ThreadNumsMax (paper: 9).
	MaxCommitThreads int
	// QueueLenMax sets ρ = MaxCommitThreads/QueueLenMax (paper's pool
	// formula). Default 45, which reproduces the paper's observed range:
	// ~20-50 queued commits keep 2-5 threads alive, and floods pin the
	// pool at MaxCommitThreads.
	QueueLenMax int
	// PoolInterval is the pool resize period.
	PoolInterval time.Duration
	// Autoscale replaces the static ρ = MaxCommitThreads/QueueLenMax pool
	// formula with the obs-driven control loop (core.AutoscaleConfig):
	// commit-queue wait and RPC in-flight feed scale decisions, with
	// hysteresis on scale-down. FixedCommitThreads still pins the pool.
	Autoscale bool
	// AutoscaleTuning overrides the control-loop constants; nil picks the
	// defaults (TargetLatency 4×PoolInterval, HighWater 4, LowWater 1,
	// StepUp 2, HoldTicks 3). The QueueLatency and Inflight samplers are
	// always wired by the client and cannot be overridden here.
	AutoscaleTuning *core.AutoscaleConfig
	// CommitInterval optionally paces each commit daemon to one batch per
	// period ("commit requests are handled periodically by background
	// commit daemons", §III-A). Zero (the default) lets the commit RPC
	// round-trip act as the natural pacing; a positive value throttles
	// daemons and grows the queue, useful for studying the adaptive pool.
	CommitInterval time.Duration

	// CompoundDegree pins the compound degree; 0 selects adaptive.
	CompoundDegree int
	// MaxCompoundDegree bounds the adaptive degree (default 6).
	MaxCompoundDegree int
	// NetCongestion feeds the adaptive controller (optional).
	NetCongestion func() time.Duration

	// DelegationChunk enables space delegation with this chunk size
	// (paper: 16 MiB); 0 disables it.
	DelegationChunk int64

	// EarlyVisibility opts conflict reads in to the layout protocol v2
	// early-visibility path: reads that find holes (or reach past the
	// locally known size) ask the MDS for uncommitted extents too —
	// other clients' published write intents — and fetch their data
	// directly from the devices instead of stalling until the writer's
	// commit lands. Safe by construction: devices only ever serve durable
	// (or stale) bytes. Requires the MDS to speak protocol v2; against an
	// older MDS the client transparently falls back to committed-only
	// reads.
	EarlyVisibility bool

	// ReadAhead enables sequential read-ahead with this window (bytes);
	// 0 disables it. The paper's §II motivates "active" file systems by
	// noting a passive one cannot prefetch on its own — with file-system
	// daemons in place, it can: a detected sequential read pattern
	// triggers an asynchronous prefetch of the next window into the page
	// cache.
	ReadAhead int64

	// OnPoolResize observes (threads, queueLen) for the Figure 6 traces.
	OnPoolResize func(threads, queueLen int)

	// Ablation knobs.

	// FixedCommitThreads pins the commit pool size (vs the adaptive
	// ThreadNums = ρ·QueueLen formula); 0 selects adaptive.
	FixedCommitThreads int
	// SpaceNoPrefetch disables the double-space-pool's background refill,
	// degrading delegation to a single pool with blocking refills.
	SpaceNoPrefetch bool
	// CommitEvenIfClean sends a commit RPC for every dequeued entry even
	// when the file has nothing new — approximating a commit queue
	// without per-file deduplication.
	CommitEvenIfClean bool

	// Tracer, if non-nil, records commit-lifecycle spans (commit.queue,
	// commit.datawait, commit.rpc on track "<Name>/commit"; write.app on
	// track "<Name>/app") and cross-shard namespace saga spans (ns.create /
	// ns.remove / ns.rename with per-phase children on track "<Name>/ns").
	// Against a v4 MDS the client also attaches a trace context to commit and
	// saga-leg requests, linking the server-side spans under the client span
	// that issued them — a cross-shard rename renders as one stitched tree.
	Tracer *obs.Tracer
}

// Client implements fsapi.FileSystem.
var _ fsapi.FileSystem = (*Client)(nil)

// Client is a mounted Redbud client.
type Client struct {
	cfg  Config
	clk  clock.Clock
	devs map[uint32]BlockDevice

	// links holds one connection per MDS shard (a single element for the
	// unsharded topology). Slice immutable after New; each link carries its
	// own reconnect bookkeeping.
	links []*mdsLink

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter; guarded by rngMu

	commitSeq atomic.Uint64 // CommitID generator

	// protoVersion is the protocol version negotiated by the last OpHello
	// (0 until the first handshake succeeds, which reads as v1 behaviour).
	protoVersion atomic.Uint32

	queue    *core.Queue[meta.FileID]
	pool     *core.Pool
	compound *core.Compound
	// space may be swapped wholesale when an MDS restart invalidates every
	// delegated span, hence the atomic pointer (nil when disabled).
	space atomic.Pointer[core.SpacePool]

	mu     sync.Mutex
	files  map[meta.FileID]*fileState
	dcache map[string]meta.FileID
	closed bool

	st clientStats
	ra raStats

	tracer      *obs.Tracer
	trackApp    string // span track for application threads, "<Name>/app"
	trackCommit string // span track for commit daemons, "<Name>/commit"
	trackNS     string // span track for namespace sagas, "<Name>/ns"

	// commitLat is the client-observed commit latency (enqueue/build →
	// reply), always collected for redbud-top and the obs bench.
	commitLat *stats.Histogram

	// queueWaitNs is the smoothed time commits spend in the queue before a
	// daemon checks them out (EWMA, alpha 1/4) — the autoscaler's latency
	// signal. Maintained whenever autoscaling or tracing is on.
	queueWaitNs atomic.Int64
}

type clientStats struct {
	creates, opens, removes stats.Counter
	writes, reads, closes   stats.Counter
	fsyncs                  stats.Counter
	bytesWritten, bytesRead stats.Counter
	commitsSent             stats.Counter // CommitReq sub-ops sent
	commitRPCs              stats.Counter // network frames carrying commits
	retries                 stats.Counter // idempotent RPC retry attempts
	writeLat, closeLat      stats.DurationSum
	opLat                   stats.DurationSum
}

// Stats is a snapshot of client counters.
type Stats struct {
	Creates, Opens, Removes   int64
	Writes, Reads, Closes     int64
	Fsyncs                    int64
	BytesWritten, BytesRead   int64
	CommitsSent, CommitRPCs   int64
	RPCs                      int64
	QueueEnqueued, QueueDedup int64
	LocalAllocs, Delegations  int64
	WastedDelegationBytes     int64
	MeanWriteLatency          time.Duration
	MeanCloseLatency          time.Duration
	MeanOpLatency             time.Duration
	CommitThreads             int
}

// New mounts a client. The MDS connection(s) must be established.
func New(cfg Config) *Client {
	conns := cfg.Shards
	if len(conns) == 0 {
		if cfg.MDS == nil {
			panic("client: nil MDS connection")
		}
		conns = []*rpc.Client{cfg.MDS}
	}
	for i, mc := range conns {
		if mc == nil {
			panic(fmt.Sprintf("client: nil connection for shard %d", i))
		}
	}
	if cfg.DelegationChunk > 0 && len(conns) > 1 {
		// Delegated spans are granted by one shard's allocator, but a write
		// may land in any shard's file; carving a shard-0 span for a
		// shard-2 inode would corrupt both allocators' books.
		panic("client: space delegation is not supported with a sharded MDS")
	}
	if len(cfg.Devices) == 0 {
		panic("client: no data devices")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real(1)
	}
	if cfg.MaxCommitThreads <= 0 {
		cfg.MaxCommitThreads = 9
	}
	if cfg.QueueLenMax <= 0 {
		cfg.QueueLenMax = 45
	}
	if cfg.PoolInterval <= 0 {
		cfg.PoolInterval = 5 * time.Millisecond
	}
	if cfg.MaxCompoundDegree <= 0 {
		cfg.MaxCompoundDegree = 6
	}

	c := &Client{
		cfg:         cfg,
		clk:         cfg.Clock,
		devs:        cfg.Devices,
		files:       make(map[meta.FileID]*fileState),
		dcache:      make(map[string]meta.FileID),
		tracer:      cfg.Tracer,
		trackApp:    cfg.Name + "/app",
		trackCommit: cfg.Name + "/commit",
		trackNS:     cfg.Name + "/ns",
		commitLat:   stats.NewLatencyHistogram(),
	}
	for i, mc := range conns {
		if d := cfg.Retry.CallTimeout; d > 0 {
			mc.SetCallTimeout(d)
		}
		c.links = append(c.links, &mdsLink{shard: i, mds: mc})
	}
	c.commitSeq.Store(commitIDBase(cfg.Name))
	seed := cfg.Retry.Seed
	if seed == 0 {
		seed = retrySeed(cfg.Name)
	}
	c.rng = rand.New(rand.NewSource(seed))
	c.compound = core.NewCompound(core.CompoundConfig{
		Fixed:         cfg.CompoundDegree,
		Max:           cfg.MaxCompoundDegree,
		NetCongestion: cfg.NetCongestion,
		ServerLoad:    c.serverLoad,
	})
	if cfg.DelegationChunk > 0 {
		c.space.Store(c.newSpacePool())
	}
	if cfg.Redial != nil || cfg.RedialShard != nil || cfg.EarlyVisibility || cfg.Tracer != nil || len(c.links) > 1 {
		// Learn each shard's incarnation — and negotiate the protocol
		// version — up front so a later reconnect can tell a restart from a
		// mere connection blip, so early visibility knows whether the MDS
		// speaks v2, and so tracing knows whether it may attach v4 trace
		// contexts. A sharded mount always handshakes: the hello reply is
		// also the shard-map verification. Best effort otherwise: a
		// pre-Hello MDS build simply leaves sawIncarnation unset (and the
		// session at v1).
		for _, l := range c.links {
			c.hello(l, l.mds)
		}
	}
	if cfg.Mode == DelayedCommit {
		c.queue = core.NewQueue[meta.FileID]()
		pc := core.PoolConfig{
			Max:         cfg.MaxCommitThreads,
			QueueLenMax: cfg.QueueLenMax,
			QueueLen:    c.queue.Len,
			Worker:      c.commitDaemon,
			Interval:    cfg.PoolInterval,
			OnResize:    cfg.OnPoolResize,
			Fixed:       cfg.FixedCommitThreads,
			Clock:       cfg.Clock,
		}
		if cfg.Autoscale {
			as := core.AutoscaleConfig{}
			if cfg.AutoscaleTuning != nil {
				as = *cfg.AutoscaleTuning
			}
			as.QueueLatency = c.queueWait
			as.Inflight = c.rpcInflight
			pc.Autoscale = &as
		}
		c.pool = core.NewPool(pc)
		c.pool.Start()
	}
	return c
}

// queueWait returns the smoothed commit-queue wait (autoscaler signal).
func (c *Client) queueWait() time.Duration { return time.Duration(c.queueWaitNs.Load()) }

// observeQueueWait folds one queue-residency sample into the EWMA.
func (c *Client) observeQueueWait(d time.Duration) {
	for {
		old := c.queueWaitNs.Load()
		nw := int64(d)
		if old != 0 {
			nw = old + (int64(d)-old)/4
		}
		if c.queueWaitNs.CompareAndSwap(old, nw) {
			return
		}
	}
}

// rpcInflight samples outstanding calls on the live MDS connections
// (autoscaler saturation guard).
func (c *Client) rpcInflight() int {
	total := 0
	for _, l := range c.links {
		mds, _ := l.conn()
		total += mds.Inflight()
	}
	return total
}

// delegate is the SpacePool's refill function. Not retried: a duplicate
// grant whose first reply was lost would leak a span on the server.
// Delegation is single-shard only (enforced in New), so shard 0 it is.
func (c *Client) delegate(size int64) (alloc.Span, error) {
	mds, _ := c.links[0].conn()
	var sp proto.SpanMsg
	if err := mds.Call(proto.OpDelegate, &proto.DelegateReq{Owner: c.cfg.Name, Size: size}, &sp); err != nil {
		return alloc.Span{}, err
	}
	return alloc.Span{Dev: int(sp.Dev), Off: sp.Off, Len: sp.Len}, nil
}

// dev resolves a device ID.
func (c *Client) dev(id uint32) (BlockDevice, error) {
	d := c.devs[id]
	if d == nil {
		return nil, fmt.Errorf("client: unknown device %d", id)
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Namespace operations

// resolve walks path to a file ID using the dentry cache.
func (c *Client) resolve(path string) (meta.FileID, error) {
	parts := fsapi.SplitPath(path)
	if len(parts) == 0 {
		return meta.RootID, nil
	}
	c.mu.Lock()
	if id, ok := c.dcache[path]; ok {
		c.mu.Unlock()
		return id, nil
	}
	c.mu.Unlock()

	cur := meta.RootID
	for _, name := range parts {
		// Each component's dirent lives on its parent's home shard.
		var resp proto.AttrResp
		if err := c.callIdem(c.shardFor(cur), proto.OpLookup, &proto.LookupReq{Parent: cur, Name: name}, &resp); err != nil {
			return 0, mapRemote(err)
		}
		cur = resp.ID
	}
	c.mu.Lock()
	c.dcache[path] = cur
	c.mu.Unlock()
	return cur, nil
}

// resolveParent resolves the directory containing path and the leaf name.
func (c *Client) resolveParent(path string) (meta.FileID, string, error) {
	parts := fsapi.SplitPath(path)
	if len(parts) == 0 {
		return 0, "", fmt.Errorf("client: invalid path %q", path)
	}
	leaf := parts[len(parts)-1]
	dir := meta.RootID
	if len(parts) > 1 {
		sub := "/" + joinPath(parts[:len(parts)-1])
		id, err := c.resolve(sub)
		if err != nil {
			return 0, "", err
		}
		dir = id
	}
	return dir, leaf, nil
}

func joinPath(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "/"
		}
		out += p
	}
	return out
}

// mapRemote converts MDS error strings to fsapi sentinel errors.
func mapRemote(err error) error {
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		switch {
		case contains(re.Message, "not found"):
			return fmt.Errorf("%w: %s", fsapi.ErrNotExist, re.Message)
		case contains(re.Message, "already exists"):
			return fmt.Errorf("%w: %s", fsapi.ErrExist, re.Message)
		case contains(re.Message, "is a directory"):
			return fmt.Errorf("%w: %s", fsapi.ErrIsDir, re.Message)
		}
	}
	return err
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Create makes a new regular file and opens it.
func (c *Client) Create(path string) (fsapi.File, error) {
	start := c.clk.Now()
	defer func() { c.st.opLat.Observe(c.clk.Since(start)) }()
	dir, leaf, err := c.resolveParent(path)
	if err != nil {
		return nil, err
	}
	resp, err := c.createEntry(dir, leaf, meta.TypeFile)
	if err != nil {
		return nil, err
	}
	c.st.creates.Inc()
	c.mu.Lock()
	c.dcache[path] = resp.ID
	fs := c.fileStateLocked(resp.ID, 0)
	fs.refs++
	c.mu.Unlock()
	return &File{c: c, fs: fs}, nil
}

// Open opens an existing regular file.
func (c *Client) Open(path string) (fsapi.File, error) {
	start := c.clk.Now()
	defer func() { c.st.opLat.Observe(c.clk.Since(start)) }()
	id, err := c.resolve(path)
	if err != nil {
		return nil, err
	}
	var attr proto.AttrResp
	if err := c.callIdem(c.shardFor(id), proto.OpGetAttr, &proto.GetAttrReq{ID: id}, &attr); err != nil {
		return nil, mapRemote(err)
	}
	if attr.Type == meta.TypeDir {
		return nil, fmt.Errorf("%w: %s", fsapi.ErrIsDir, path)
	}
	c.st.opens.Inc()
	c.mu.Lock()
	fs := c.fileStateLocked(id, attr.Size)
	fs.refs++
	c.mu.Unlock()
	return &File{c: c, fs: fs}, nil
}

// fileStateLocked finds or creates the shared per-file state. Caller holds
// c.mu; fs.size is guarded by fs.mu (reestablish shrinks it concurrently),
// and c.mu → fs.mu is the nesting order used throughout.
func (c *Client) fileStateLocked(id meta.FileID, size int64) *fileState {
	fs := c.files[id]
	if fs == nil {
		fs = newFileState(id, size)
		c.files[id] = fs
		return fs
	}
	fs.mu.Lock()
	if size > fs.size {
		fs.size = size
	}
	// size comes from a committed attr (Create/Open), never from a visible
	// size, so it also raises the committed watermark: a re-opened handle
	// must be able to probe for the layout backing the growth it just saw.
	if size > fs.committedSize {
		fs.committedSize = size
	}
	fs.mu.Unlock()
	return fs
}

// createEntry makes a new namespace entry, routing by the placement hash:
// when the new inode homes on the parent's own shard it is a classic
// one-shard create; otherwise the two-phase cross-shard protocol runs.
func (c *Client) createEntry(dir meta.FileID, leaf string, typ meta.FileType) (proto.AttrResp, error) {
	target := meta.PlaceShard(dir, leaf, len(c.links))
	if target == c.shardOf(dir) {
		// Not retried: a duplicate create whose first reply was lost would
		// fail with ErrExists against the first execution's entry.
		mds, _ := c.links[target].conn()
		var resp proto.AttrResp
		if err := mds.Call(proto.OpCreate, &proto.CreateReq{Parent: dir, Name: leaf, Type: typ}, &resp); err != nil {
			return resp, mapRemote(err)
		}
		return resp, nil
	}
	return c.createCrossShard(dir, leaf, typ, target)
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	dir, leaf, err := c.resolveParent(path)
	if err != nil {
		return err
	}
	resp, err := c.createEntry(dir, leaf, meta.TypeDir)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.dcache[path] = resp.ID
	c.mu.Unlock()
	return nil
}

// Remove unlinks a file or empty directory.
func (c *Client) Remove(path string) error {
	dir, leaf, err := c.resolveParent(path)
	if err != nil {
		return err
	}
	// Resolve the inode (dcache or lookup RPC): any pending delayed
	// commit must land before the extents are freed server-side, and the
	// local state must be forgotten so later drains don't commit against
	// a deleted inode.
	id, resolveErr := c.resolve(path)
	if resolveErr == nil {
		c.mu.Lock()
		fs := c.files[id]
		c.mu.Unlock()
		if fs != nil {
			if err := c.commitFile(fs); err != nil {
				return err
			}
		}
	}
	if resolveErr == nil && c.shardOf(id) != c.shardOf(dir) {
		// The dirent and the inode live on different shards: run the
		// two-phase remove (prepare on home, unlink on parent, commit on
		// home).
		if err := c.removeCrossShard(dir, leaf, id); err != nil {
			return err
		}
	} else {
		mds, _ := c.shardFor(dir).conn()
		if err := mds.Call(proto.OpRemove, &proto.RemoveReq{Parent: dir, Name: leaf}, nil); err != nil {
			return mapRemote(err)
		}
	}
	c.st.removes.Inc()
	c.mu.Lock()
	if resolveErr == nil {
		delete(c.files, id)
	}
	delete(c.dcache, path)
	c.mu.Unlock()
	return nil
}

// Rename moves a file or directory. Any pending delayed commit of the moved
// file rides along untouched — commits address inodes, not names.
func (c *Client) Rename(oldPath, newPath string) error {
	srcDir, srcLeaf, err := c.resolveParent(oldPath)
	if err != nil {
		return err
	}
	dstDir, dstLeaf, err := c.resolveParent(newPath)
	if err != nil {
		return err
	}
	if c.shardOf(srcDir) != c.shardOf(dstDir) {
		// The two dirent tables live on different shards: two-phase rename.
		if err := c.renameCrossShard(srcDir, srcLeaf, dstDir, dstLeaf); err != nil {
			return err
		}
	} else {
		req := proto.RenameReq{SrcParent: srcDir, SrcName: srcLeaf, DstParent: dstDir, DstName: dstLeaf}
		mds, _ := c.shardFor(srcDir).conn()
		if err := mds.Call(proto.OpRename, &req, nil); err != nil {
			return mapRemote(err)
		}
	}
	// Path-keyed cache entries under the old name (and, for directories,
	// the whole subtree) are stale: drop the dentry cache wholesale —
	// renames are rare, lookups are cheap.
	c.mu.Lock()
	c.dcache = make(map[string]meta.FileID)
	c.mu.Unlock()
	return nil
}

func (c *Client) cachedID(path string) (meta.FileID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.dcache[path]
	return id, ok
}

// Stat describes a path.
func (c *Client) Stat(path string) (fsapi.Info, error) {
	id, err := c.resolve(path)
	if err != nil {
		return fsapi.Info{}, err
	}
	// Attributes come from the inode's home shard — the parent shard's
	// remote-edge record knows only name and type.
	var attr proto.AttrResp
	if err := c.callIdem(c.shardFor(id), proto.OpGetAttr, &proto.GetAttrReq{ID: id}, &attr); err != nil {
		return fsapi.Info{}, mapRemote(err)
	}
	info := fsapi.Info{Name: lastPart(path), Size: attr.Size, Dir: attr.Type == meta.TypeDir, MTime: attr.MTime}
	// Local uncommitted writes make the file larger than the MDS knows.
	c.mu.Lock()
	if fs := c.files[id]; fs != nil {
		fs.mu.Lock()
		if fs.size > info.Size {
			info.Size = fs.size
		}
		fs.mu.Unlock()
	}
	c.mu.Unlock()
	return info, nil
}

func lastPart(path string) string {
	parts := fsapi.SplitPath(path)
	if len(parts) == 0 {
		return "/"
	}
	return parts[len(parts)-1]
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]fsapi.Info, error) {
	id, err := c.resolve(path)
	if err != nil {
		return nil, err
	}
	var resp proto.ReadDirResp
	if err := c.callIdem(c.shardFor(id), proto.OpReadDir, &proto.ReadDirReq{ID: id}, &resp); err != nil {
		return nil, mapRemote(err)
	}
	out := make([]fsapi.Info, 0, len(resp.Entries))
	for _, e := range resp.Entries {
		// Remote-homed children list with Size 0 (the parent shard does not
		// track sizes); Stat the path for the authoritative size.
		out = append(out, fsapi.Info{Name: e.Name, Dir: e.Type == meta.TypeDir, Size: e.Size})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Commit machinery

// enqueueCommit registers a file for background commit (delayed mode) or
// commits it synchronously (sync mode).
func (c *Client) enqueueCommit(fs *fileState) error {
	if c.cfg.Mode == DelayedCommit {
		if c.tracer.Enabled() || c.cfg.Autoscale {
			// Stamp the queue-entry time once per queue residency; the
			// commit daemon that builds the request consumes it (tracing
			// records a span, autoscaling feeds the queue-wait EWMA).
			now := c.clk.Now()
			fs.mu.Lock()
			if fs.enqAt.IsZero() {
				fs.enqAt = now
			}
			fs.mu.Unlock()
		}
		c.queue.Enqueue(fs.id)
		return nil
	}
	return c.commitFile(fs)
}

// commitDaemon is one commit thread: it checks out batches of files whose
// local writes completed and sends their metadata in one compound RPC.
func (c *Client) commitDaemon(stop <-chan struct{}) {
	for {
		c.compound.Tick()
		degree := c.compound.Degree()
		batch := c.queue.Dequeue(degree, stop)
		if batch == nil {
			return
		}
		c.commitBatch(batch)
		if c.cfg.CommitInterval > 0 {
			// Optional periodic processing: one batch per period.
			select {
			case <-stop:
				return
			case <-c.clk.After(c.cfg.CommitInterval):
			}
		}
	}
}

// commitBatch waits for the files' data writes, then sends one compound RPC
// per shard carrying every non-empty commit. Commits route to the inode's
// home shard, so a batch spanning shards splits into one frame each — files
// of one shard still share their frame.
func (c *Client) commitBatch(ids []meta.FileID) {
	var reqs []*proto.CommitReq
	var states []*fileState
	for _, id := range ids {
		c.mu.Lock()
		fs := c.files[id]
		c.mu.Unlock()
		if fs == nil {
			continue
		}
		req := c.buildCommit(fs)
		if req == nil {
			continue
		}
		reqs = append(reqs, req)
		states = append(states, fs)
	}
	if len(c.links) > 1 {
		byShard := make(map[int][]int)
		for i, fs := range states {
			s := c.shardOf(fs.id)
			byShard[s] = append(byShard[s], i)
		}
		for _, idxs := range byShard {
			gr := make([]*proto.CommitReq, 0, len(idxs))
			gs := make([]*fileState, 0, len(idxs))
			for _, i := range idxs {
				gr = append(gr, reqs[i])
				gs = append(gs, states[i])
			}
			c.sendCommitGroup(gs, gr)
		}
		return
	}
	c.sendCommitGroup(states, reqs)
}

// sendCommitGroup ships one group of commits — all homed on the same shard —
// as a single RPC or compound frame.
func (c *Client) sendCommitGroup(states []*fileState, reqs []*proto.CommitReq) {
	if len(reqs) == 0 {
		return
	}
	if len(reqs) == 1 {
		c.st.commitRPCs.Inc()
		c.st.commitsSent.Inc()
		var resp proto.CommitResp
		start := c.clk.Now()
		err := c.sendCommit(states[0], reqs[0], &resp)
		c.observeCommitRPC(start, reqs[0].CommitID)
		c.finishCommit(states[0], reqs[0], err)
		return
	}
	ops := make([]rpc.SubOp, 0, len(reqs))
	for _, req := range reqs {
		ops = append(ops, rpc.SubOp{Op: proto.OpCommit, Body: wire.Encode(req)})
	}
	c.st.commitRPCs.Inc()
	start := c.clk.Now()
	results, err := c.sendCompound(states, ops)
	for i, fs := range states {
		c.st.commitsSent.Inc()
		c.observeCommitRPC(start, reqs[i].CommitID)
		e := err
		if e == nil && results[i].Err != nil {
			e = results[i].Err
		}
		c.finishCommit(fs, reqs[i], e)
	}
}

// observeCommitRPC folds one commit's RPC round-trip into the latency
// histogram and, when tracing, records its commit.rpc span. Commits sharing
// a compound frame share the interval — each rode the same wire round trip.
func (c *Client) observeCommitRPC(start time.Time, commitID uint64) {
	end := c.clk.Now()
	c.commitLat.ObserveDuration(end.Sub(start))
	if c.tracer.Enabled() {
		c.tracer.RecordSpan(obs.Span{
			Track: c.trackCommit, Name: obs.SpanCommitRPC, CommitID: commitID,
			TraceID: commitID, SpanID: obs.NewSpanID(commitID, obs.SpanCommitRPC),
			Start: start, End: end,
		})
	}
}

// buildCommit waits for outstanding data writes (the ordered-write rule) and
// snapshots the file's uncommitted metadata. Returns nil when there is
// nothing to commit.
func (c *Client) buildCommit(fs *fileState) *proto.CommitReq {
	traced := c.tracer.Enabled()
	var waitStart time.Time
	if traced || c.cfg.Autoscale {
		waitStart = c.clk.Now()
	}
	fs.mu.Lock()
	for fs.pendingWrites > 0 {
		fs.cond.Wait()
	}
	enqAt := fs.enqAt
	fs.enqAt = time.Time{}
	if c.cfg.Autoscale && !enqAt.IsZero() {
		c.observeQueueWait(waitStart.Sub(enqAt))
	}
	if fs.writeErr != nil || (!fs.dirtyMeta && !c.cfg.CommitEvenIfClean) {
		fs.mu.Unlock()
		return nil
	}
	var exts []meta.Extent
	for _, e := range fs.extents {
		if e.State == meta.StateUncommitted {
			exts = append(exts, e)
		}
	}
	req := &proto.CommitReq{
		Owner: c.cfg.Name, File: fs.id, Size: fs.size, MTime: fs.mtime,
		// A fresh CommitID per built request: retransmissions of this exact
		// request dedupe at the MDS, while a rebuilt (different) commit for
		// the same file is a new operation.
		CommitID: c.commitSeq.Add(1),
		Extents:  exts,
	}
	fs.mu.Unlock()
	if traced {
		// The commit's trace reuses the CommitID (globally unique — the name
		// hash occupies the high bits) as its TraceID, and the commit.rpc
		// span as the parent the server links under. Only a v4 session may
		// carry the context: an older server would reject the trailing bytes.
		if c.protoVersion.Load() >= proto.ProtoV4 {
			req.Trace = proto.TraceCtx{TraceID: req.CommitID, SpanID: obs.NewSpanID(req.CommitID, obs.SpanCommitRPC)}
		}
		if !enqAt.IsZero() {
			c.tracer.RecordSpan(obs.Span{
				Track: c.trackCommit, Name: obs.SpanCommitQueue, CommitID: req.CommitID,
				TraceID: req.CommitID, SpanID: obs.NewSpanID(req.CommitID, obs.SpanCommitQueue),
				Start: enqAt, End: waitStart,
			})
		}
		c.tracer.RecordSpan(obs.Span{
			Track: c.trackCommit, Name: obs.SpanCommitDataWait, CommitID: req.CommitID,
			TraceID: req.CommitID, SpanID: obs.NewSpanID(req.CommitID, obs.SpanCommitDataWait),
			Start: waitStart, End: c.clk.Now(),
		})
	}
	return req
}

// extentKey identifies one extent of a file: the committed-extent match in
// finishCommit needs the device and file offset too, because volume offsets
// alone are not unique across the array.
type extentKey struct {
	fileOff, volOff int64
	dev             uint32
}

// finishCommit marks the committed extents and wakes fsync waiters. A
// "not found" rejection means the file was removed (possibly by another
// client) while the commit was in flight; there is nothing left to order,
// so the state is dropped rather than treated as a failure.
func (c *Client) finishCommit(fs *fileState, req *proto.CommitReq, err error) {
	if err != nil && errors.Is(mapRemote(err), fsapi.ErrNotExist) {
		fs.mu.Lock()
		fs.dirtyMeta = false
		fs.commitGen++
		fs.cond.Broadcast()
		fs.mu.Unlock()
		return
	}
	fs.mu.Lock()
	if err != nil {
		fs.commitErr = err
	} else {
		// Match acked extents by full identity, not VolOff alone: volume
		// offsets repeat across devices (every device starts its AGs at the
		// same bases), so a VolOff-only match can mark an extent written
		// concurrently with this RPC as committed even though it was never
		// sent — the MDS then never learns about it and cross-client reads
		// see a hole.
		committed := make(map[extentKey]bool, len(req.Extents))
		for _, e := range req.Extents {
			committed[extentKey{e.FileOff, e.VolOff, e.Dev}] = true
		}
		stillDirty := false
		for i := range fs.extents {
			e := &fs.extents[i]
			if committed[extentKey{e.FileOff, e.VolOff, e.Dev}] {
				e.State = meta.StateCommitted
			} else if e.State == meta.StateUncommitted {
				stillDirty = true
			}
		}
		fs.committedSize = req.Size
		fs.dirtyMeta = stillDirty
	}
	fs.commitGen++
	fs.cond.Broadcast()
	fs.mu.Unlock()
}

// commitFile synchronously commits one file (sync mode, fsync, unmount).
func (c *Client) commitFile(fs *fileState) error {
	req := c.buildCommit(fs)
	if req == nil {
		fs.mu.Lock()
		err := fs.writeErr
		fs.mu.Unlock()
		return err
	}
	c.st.commitRPCs.Inc()
	c.st.commitsSent.Inc()
	var resp proto.CommitResp
	start := c.clk.Now()
	err := c.sendCommit(fs, req, &resp)
	c.observeCommitRPC(start, req.CommitID)
	c.finishCommit(fs, req, err)
	if err != nil && errors.Is(mapRemote(err), fsapi.ErrNotExist) {
		return nil // file removed while the commit was in flight
	}
	return err
}

// ---------------------------------------------------------------------------
// Lifecycle

// Close unmounts: flushes all dirty files, drains the commit machinery, and
// returns delegations.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fsapi.ErrClosed
	}
	c.closed = true
	files := make([]*fileState, 0, len(c.files))
	for _, fs := range c.files {
		files = append(files, fs)
	}
	c.mu.Unlock()

	firstErr := c.drainFiles(files)
	if c.pool != nil {
		c.queue.Close()
		c.pool.Stop()
	}
	if pool := c.space.Load(); pool != nil {
		mds, _ := c.links[0].conn()
		for _, sp := range pool.Close() {
			msg := proto.SpanMsg{Dev: uint32(sp.Dev), Off: sp.Off, Len: sp.Len}
			if err := mds.Call(proto.OpDelegReturn, &proto.DelegReturnReq{Owner: c.cfg.Name, Span: msg}, nil); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, l := range c.links {
		mds, _ := l.conn()
		mds.Close()
	}
	return firstErr
}

// Crash abandons the client without committing or returning anything —
// the client-failure scenario for orphan-GC tests.
func (c *Client) Crash() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	if c.pool != nil {
		c.queue.Close()
		c.pool.Stop()
	}
	for _, l := range c.links {
		mds, _ := l.conn()
		mds.Close()
	}
}

// Drain blocks until the commit queue is empty and all dirty files are
// committed; the harness uses it to close a measurement window without
// tearing the client down. Commits are issued with the same parallelism the
// background pool would use.
func (c *Client) Drain() error {
	c.mu.Lock()
	files := make([]*fileState, 0, len(c.files))
	for _, fs := range c.files {
		files = append(files, fs)
	}
	c.mu.Unlock()

	return c.drainFiles(files)
}

// drainFiles commits the given files with bounded parallelism.
func (c *Client) drainFiles(files []*fileState) error {
	sem := make(chan struct{}, c.cfg.MaxCommitThreads)
	errc := make(chan error, len(files))
	for _, fs := range files {
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			errc <- c.commitFile(fs)
		}()
	}
	var firstErr error
	for range files {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// QueueLen exposes the commit queue length (Figure 6 sampling).
func (c *Client) QueueLen() int {
	if c.queue == nil {
		return 0
	}
	return c.queue.Len()
}

// CommitThreads exposes the live commit-thread count (Figure 6 sampling).
func (c *Client) CommitThreads() int {
	if c.pool == nil {
		return 0
	}
	return c.pool.Size()
}

// CompoundDegree exposes the current compound degree.
func (c *Client) CompoundDegree() int { return c.compound.Degree() }

// Stats snapshots the client counters.
func (c *Client) Stats() Stats {
	s := Stats{
		Creates:          c.st.creates.Load(),
		Opens:            c.st.opens.Load(),
		Removes:          c.st.removes.Load(),
		Writes:           c.st.writes.Load(),
		Reads:            c.st.reads.Load(),
		Closes:           c.st.closes.Load(),
		Fsyncs:           c.st.fsyncs.Load(),
		BytesWritten:     c.st.bytesWritten.Load(),
		BytesRead:        c.st.bytesRead.Load(),
		CommitsSent:      c.st.commitsSent.Load(),
		CommitRPCs:       c.st.commitRPCs.Load(),
		RPCs:             c.rpcCalls(),
		MeanWriteLatency: c.st.writeLat.Mean(),
		MeanCloseLatency: c.st.closeLat.Mean(),
		MeanOpLatency:    c.st.opLat.Mean(),
		CommitThreads:    c.CommitThreads(),
	}
	if c.queue != nil {
		s.QueueEnqueued, s.QueueDedup = c.queue.Stats()
	}
	if pool := c.space.Load(); pool != nil {
		s.LocalAllocs, s.Delegations, s.WastedDelegationBytes = pool.Stats()
	}
	return s
}

// rpcCalls totals RPCs across every shard's live connection and any each
// replaced.
func (c *Client) rpcCalls() int64 {
	var total int64
	for _, l := range c.links {
		total += l.calls()
	}
	return total
}

// badFrames sums the live connections' malformed-frame counters.
func (c *Client) badFrames() int64 {
	var total int64
	for _, l := range c.links {
		mds, _ := l.conn()
		total += mds.BadFrames()
	}
	return total
}

// CommitLatency exposes the client-observed commit latency histogram
// (seconds, RPC send → reply).
func (c *Client) CommitLatency() *stats.Histogram { return c.commitLat }

// RegisterMetrics exposes the client counters in a metrics registry,
// labeled with the client name.
func (c *Client) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	l := obs.Labels{"client": c.cfg.Name}
	r.CounterFunc("redbud_client_writes_total", "WriteAt calls", l, c.st.writes.Load)
	r.CounterFunc("redbud_client_reads_total", "ReadAt calls", l, c.st.reads.Load)
	r.CounterFunc("redbud_client_written_bytes_total", "bytes written by applications", l, c.st.bytesWritten.Load)
	r.CounterFunc("redbud_client_read_bytes_total", "bytes read by applications", l, c.st.bytesRead.Load)
	r.CounterFunc("redbud_client_fsyncs_total", "Sync calls", l, c.st.fsyncs.Load)
	r.CounterFunc("redbud_client_commits_sent_total", "commit requests sent (compound sub-ops counted)", l, c.st.commitsSent.Load)
	r.CounterFunc("redbud_client_commit_rpcs_total", "network frames carrying commits", l, c.st.commitRPCs.Load)
	r.CounterFunc("redbud_client_rpcs_total", "RPCs issued across all MDS connections", l, c.rpcCalls)
	r.CounterFunc("redbud_client_retries_total", "idempotent RPC retry attempts after transport faults", l, c.st.retries.Load)
	r.CounterFunc("redbud_client_bad_frames_total", "malformed response frames on the live connection", l, c.badFrames)
	r.GaugeFunc("redbud_client_commit_queue_len", "commit queue length", l,
		func() int64 { return int64(c.QueueLen()) })
	r.GaugeFunc("redbud_client_commit_threads", "live commit-daemon pool size", l,
		func() int64 { return int64(c.CommitThreads()) })
	r.GaugeFunc("redbud_client_compound_degree", "current adaptive compound degree", l,
		func() int64 { return int64(c.CompoundDegree()) })
	r.RegisterHistogram("redbud_client_commit_latency_seconds", "client-observed commit RPC latency", l, c.commitLat)
	r.GaugeFunc("redbud_client_commit_queue_wait_ns", "smoothed commit queue wait (autoscaler latency signal)", l, c.queueWaitNs.Load)
	if c.pool != nil {
		r.CounterFunc("redbud_client_autoscale_ups_total", "autoscaler scale-up decisions", l,
			func() int64 { return c.pool.AutoscaleStats().Ups })
		r.CounterFunc("redbud_client_autoscale_downs_total", "autoscaler scale-down decisions", l,
			func() int64 { return c.pool.AutoscaleStats().Downs })
		r.CounterFunc("redbud_client_autoscale_holds_total", "autoscaler hold decisions", l,
			func() int64 { return c.pool.AutoscaleStats().Holds })
	}
}

// AutoscaleStats exposes the commit pool's control-loop decision counters
// (zeros in sync mode or under the v1 formula).
func (c *Client) AutoscaleStats() core.AutoscaleStats {
	if c.pool == nil {
		return core.AutoscaleStats{}
	}
	return c.pool.AutoscaleStats()
}
