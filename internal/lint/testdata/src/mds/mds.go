// Package mds exercises the wireevolve version-clamp rule: any function
// consuming the v2-gated LayoutWantUncommitted flag must strip it for
// sessions that negotiated less than v2.
package mds

import (
	"meta"
	"proto"
)

// Server mirrors the MDS session surface.
type Server struct {
	versions map[string]uint32
}

func (s *Server) sessionVersion(owner string) uint32 {
	if v, ok := s.versions[owner]; ok {
		return v
	}
	return 1
}

// handleClamped is the sanctioned downgrade: the v2 bit is stripped before
// anything acts on it.
func (s *Server) handleClamped(owner string, flags meta.LayoutFlags) meta.LayoutFlags {
	if flags.Has(meta.LayoutWantUncommitted) && s.sessionVersion(owner) < proto.ProtoV2 {
		flags &^= meta.LayoutWantUncommitted
	}
	return flags
}

// handleUnclamped honours the v2 capability for every session, including v1
// peers that cannot even have requested it legitimately.
func (s *Server) handleUnclamped(owner string, flags meta.LayoutFlags) bool {
	return flags.Has(meta.LayoutWantUncommitted) // want `consumed without a protocol-version clamp`
}
