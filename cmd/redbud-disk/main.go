// Command redbud-disk serves one simulated disk of the shared array over
// TCP (the SAN protocol of internal/san), standing in for the paper's
// fiber-channel fabric in the multi-process deployment.
//
//	redbud-disk -listen :9001 -dev 0 -size 17179869184
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/netsim"
	"redbud/internal/san"
)

func main() {
	var (
		listen  = flag.String("listen", ":9001", "TCP listen address")
		devID   = flag.Int("dev", 0, "device ID (must match the MDS's AG layout)")
		size    = flag.Int64("size", 16<<30, "device capacity in bytes")
		fast    = flag.Bool("fast", false, "use the light disk model instead of the 2012-era HDD")
		daemons = flag.Int("daemons", 16, "RPC daemon threads")
	)
	flag.Parse()

	model := blockdev.DefaultHDD()
	if *fast {
		model = blockdev.FastHDD()
	}
	clk := clock.Real(1)
	dev := blockdev.New(blockdev.Config{ID: *devID, Size: *size, Model: model, Clock: clk})
	defer dev.Close()
	srv := san.NewServer(dev, clk, *daemons)
	defer srv.Close()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redbud-disk %d listening on %s (%d bytes)\n", *devID, l.Addr(), *size)
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go srv.ServeConn(netsim.FrameConn(conn))
	}
}
