package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"redbud/internal/alloc"
	"redbud/internal/clock"
	"redbud/internal/fsapi"
	"redbud/internal/meta"
)

// TestClusterTorture drives a full delayed-commit cluster with a random mix
// of every operation across several clients, crashes one client mid-run,
// and then proves the system's end state three ways:
//
//  1. every surviving file reads back exactly what its oracle holds;
//  2. the MDS passes a full fsck (allocator/namespace/extent cross-check);
//  3. an MDS "reboot" — rebuilding the store purely from the journal — passes
//     fsck again and serves the same committed files.
func TestClusterTorture(t *testing.T) {
	opt := TestOptions()
	opt.Clients = 4
	opt.Scale = 0.002
	c := Build(SysRedbudDCSD, opt)
	defer c.Close()

	type oracleFile struct {
		data []byte
		sync bool // fsynced: must survive any crash
	}
	// Per-client oracles: client i only touches its own namespace.
	oracles := make([]map[string]*oracleFile, opt.Clients)

	for i := range oracles {
		oracles[i] = map[string]*oracleFile{}
	}
	for i, m := range c.Mounts {
		if err := m.Mkdir(fmt.Sprintf("/t%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	runClient := func(i int, steps int, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		m := c.Mounts[i]
		oracle := oracles[i]
		names := 0
		paths := func() []string {
			out := make([]string, 0, len(oracle))
			for p := range oracle {
				out = append(out, p)
			}
			return out
		}
		for step := 0; step < steps; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // create + write
				path := fmt.Sprintf("/t%d/f%d-%d", i, seed, names)
				names++
				size := rng.Intn(64<<10) + 1
				data := make([]byte, size)
				rng.Read(data)
				f, err := m.Create(path)
				if err != nil {
					t.Errorf("create %s: %v", path, err)
					return
				}
				if _, err := f.WriteAt(data, 0); err != nil {
					t.Errorf("write %s: %v", path, err)
					return
				}
				of := &oracleFile{data: data}
				if rng.Intn(4) == 0 {
					if err := f.Sync(); err != nil {
						t.Errorf("sync %s: %v", path, err)
						return
					}
					of.sync = true
				}
				f.Close()
				oracle[path] = of

			case op < 6 && len(oracle) > 0: // read back and verify
				ps := paths()
				path := ps[rng.Intn(len(ps))]
				of := oracle[path]
				f, err := m.Open(path)
				if err != nil {
					t.Errorf("open %s: %v", path, err)
					return
				}
				buf := make([]byte, len(of.data))
				n, err := f.ReadAt(buf, 0)
				f.Close()
				if err != nil || n != len(of.data) {
					t.Errorf("read %s: n=%d err=%v", path, n, err)
					return
				}
				if !bytes.Equal(buf, of.data) {
					t.Errorf("%s: content mismatch", path)
					return
				}

			case op < 7 && len(oracle) > 0: // append
				ps := paths()
				path := ps[rng.Intn(len(ps))]
				of := oracle[path]
				extra := make([]byte, rng.Intn(8<<10)+1)
				rng.Read(extra)
				f, err := m.Open(path)
				if err != nil {
					t.Errorf("open %s: %v", path, err)
					return
				}
				if _, err := f.Append(extra); err != nil {
					t.Errorf("append %s: %v", path, err)
					return
				}
				f.Close()
				of.data = append(of.data, extra...)
				of.sync = false

			case op < 8 && len(oracle) > 0: // rename
				ps := paths()
				path := ps[rng.Intn(len(ps))]
				newPath := fmt.Sprintf("/t%d/r%d-%d", i, seed, step)
				if err := m.Rename(path, newPath); err != nil {
					t.Errorf("rename %s: %v", path, err)
					return
				}
				oracle[newPath] = oracle[path]
				delete(oracle, path)

			case len(oracle) > 0: // remove
				ps := paths()
				path := ps[rng.Intn(len(ps))]
				if err := m.Remove(path); err != nil {
					t.Errorf("remove %s: %v", path, err)
					return
				}
				delete(oracle, path)
			}
		}
	}

	// Phase 1: all clients work concurrently.
	done := make(chan int, opt.Clients)
	for i := 0; i < opt.Clients; i++ {
		go func() {
			runClient(i, 120, int64(1000+i))
			done <- i
		}()
	}
	for i := 0; i < opt.Clients; i++ {
		<-done
	}
	if t.Failed() {
		return
	}

	// Phase 2: client N-1 crashes; its lease is revoked at the MDS.
	victim := opt.Clients - 1
	c.Redbud[victim].Crash()
	c.Store.ClientGone(fmt.Sprintf("client-%d", victim))

	// Phase 3: survivors keep working.
	for i := 0; i < victim; i++ {
		go func() {
			runClient(i, 60, int64(2000+i))
			done <- i
		}()
	}
	for i := 0; i < victim; i++ {
		<-done
	}
	if t.Failed() {
		return
	}
	for i := 0; i < victim; i++ {
		if err := c.Redbud[i].Drain(); err != nil {
			t.Fatal(err)
		}
	}

	// Check 1: surviving clients' files match their oracles exactly.
	for i := 0; i < victim; i++ {
		m := c.Mounts[i]
		for path, of := range oracles[i] {
			f, err := m.Open(path)
			if err != nil {
				t.Fatalf("final open %s: %v", path, err)
			}
			buf := make([]byte, len(of.data))
			n, err := f.ReadAt(buf, 0)
			f.Close()
			if err != nil || n != len(of.data) || !bytes.Equal(buf, of.data) {
				t.Fatalf("final verify %s: n=%d err=%v", path, n, err)
			}
		}
	}

	// Check 2: live MDS passes fsck and the ordered-write invariant.
	if r := c.Store.Fsck(c.AGTotal); !r.OK() {
		t.Fatalf("live fsck failed: %v", r.Problems)
	}
	bad := c.Store.CheckConsistent(func(dev int, off, n int64) bool {
		return c.Devices[dev].IsDurable(off, n)
	})
	if len(bad) != 0 {
		t.Fatalf("%d committed extents without durable data", len(bad))
	}

	// Check 3: MDS reboot from the journal alone.
	mkAGs := func() *alloc.AGSet {
		var groups []*alloc.Group
		for _, d := range c.Devices {
			half := d.Size() / 2
			groups = append(groups,
				alloc.NewGroup(d.ID(), 0, half),
				alloc.NewGroup(d.ID(), half, d.Size()))
		}
		return alloc.NewAGSet(alloc.RoundRobin, groups...)
	}
	ags := mkAGs()
	recovered, rstats, err := meta.Recover(meta.Config{
		AGs:     ags,
		Journal: meta.NewJournal(c.MetaDev, 0, 2<<30),
		Clock:   clock.Real(1),
	})
	if err != nil {
		t.Fatalf("recovery failed after %d records: %v", rstats.Records, err)
	}
	if r := recovered.Fsck(meta.TotalSpace(ags)); !r.OK() {
		t.Fatalf("post-recovery fsck failed: %v", r.Problems)
	}
	// Every fsynced file of every client (including the crash victim!)
	// must exist with its full size in the recovered store.
	for i := 0; i < opt.Clients; i++ {
		dir, err := recovered.Lookup(meta.RootID, fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatalf("client dir t%d lost: %v", i, err)
		}
		for path, of := range oracles[i] {
			if !of.sync {
				continue
			}
			name := fsapi.SplitPath(path)[1]
			attr, err := recovered.Lookup(dir.ID, name)
			if err != nil {
				t.Fatalf("fsynced file %s lost in recovery: %v", path, err)
			}
			if attr.Size != int64(len(of.data)) {
				t.Fatalf("fsynced file %s size %d, want %d", path, attr.Size, len(of.data))
			}
		}
	}
	t.Logf("torture: %d journal records, recovery reclaimed %d orphan bytes from %d delegations",
		rstats.Records, rstats.OrphanBytes, rstats.Delegations)
}
