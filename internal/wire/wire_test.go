package wire

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestScalarRoundTrip(t *testing.T) {
	var b Buffer
	b.PutU8(0xab)
	b.PutBool(true)
	b.PutBool(false)
	b.PutU16(0xbeef)
	b.PutU32(0xdeadbeef)
	b.PutU64(0x0123456789abcdef)
	b.PutI64(-42)
	b.PutF64(3.5)
	b.PutDuration(1500 * time.Millisecond)
	ts := time.Unix(123, 456).UTC()
	b.PutTime(ts)

	r := NewReader(b.Bytes())
	if got := r.U8(); got != 0xab {
		t.Fatalf("u8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool round trip failed")
	}
	if got := r.U16(); got != 0xbeef {
		t.Fatalf("u16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("u32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Fatalf("u64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("i64 = %d", got)
	}
	if got := r.F64(); got != 3.5 {
		t.Fatalf("f64 = %v", got)
	}
	if got := r.Duration(); got != 1500*time.Millisecond {
		t.Fatalf("duration = %v", got)
	}
	if got := r.Time(); !got.Equal(ts) {
		t.Fatalf("time = %v, want %v", got, ts)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestBytesAndString(t *testing.T) {
	var b Buffer
	b.PutBytes([]byte("abc"))
	b.PutString("héllo")
	b.PutBytes(nil)
	r := NewReader(b.Bytes())
	if got := r.Bytes(); string(got) != "abc" {
		t.Fatalf("bytes = %q", got)
	}
	if got := r.String(); got != "héllo" {
		t.Fatalf("string = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Fatalf("empty bytes = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestBytesIsCopy(t *testing.T) {
	var b Buffer
	b.PutBytes([]byte("abc"))
	raw := b.Bytes()
	r := NewReader(raw)
	got := r.Bytes()
	raw[4] = 'X' // mutate underlying buffer after decode
	if string(got) != "abc" {
		t.Fatalf("Bytes aliases input: %q", got)
	}
}

func TestTruncated(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.U32()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v", r.Err())
	}
	// Sticky: further reads keep the first error and return zero values.
	if r.U64() != 0 || !errors.Is(r.Err(), ErrTruncated) {
		t.Fatal("error not sticky")
	}
}

func TestTruncatedString(t *testing.T) {
	var b Buffer
	b.PutU32(100) // claims 100 bytes, provides none
	r := NewReader(b.Bytes())
	if got := r.String(); got != "" || !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("got %q err %v", got, r.Err())
	}
}

func TestTooLong(t *testing.T) {
	var b Buffer
	b.PutU32(1 << 30)
	r := NewReader(b.Bytes())
	if r.Bytes() != nil || !errors.Is(r.Err(), ErrTooLong) {
		t.Fatalf("err = %v", r.Err())
	}
	r2 := NewReader(b.Bytes())
	if r2.String() != "" || !errors.Is(r2.Err(), ErrTooLong) {
		t.Fatalf("err = %v", r2.Err())
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(16)
	b.PutU64(1)
	if b.Len() != 8 {
		t.Fatalf("len = %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("reset failed")
	}
}

type testMsg struct {
	A uint32
	B string
	C []byte
	D int64
}

func (m *testMsg) MarshalWire(b *Buffer) {
	b.PutU32(m.A)
	b.PutString(m.B)
	b.PutBytes(m.C)
	b.PutI64(m.D)
}

func (m *testMsg) UnmarshalWire(r *Reader) error {
	m.A = r.U32()
	m.B = r.String()
	m.C = r.Bytes()
	m.D = r.I64()
	return nil
}

func TestEncodeDecode(t *testing.T) {
	in := &testMsg{A: 7, B: "x", C: []byte{1, 2}, D: -9}
	p := Encode(in)
	var out testMsg
	if err := Decode(p, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != in.A || out.B != in.B || string(out.C) != string(in.C) || out.D != in.D {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	p := append(Encode(&testMsg{}), 0xff)
	var out testMsg
	if err := Decode(p, &out); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeTruncatedMessage(t *testing.T) {
	p := Encode(&testMsg{A: 7, B: "hello"})
	var out testMsg
	if err := Decode(p[:3], &out); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

// TestQuickRoundTrip property-checks the codec over random messages.
func TestQuickRoundTrip(t *testing.T) {
	f := func(a uint32, s string, c []byte, d int64) bool {
		in := &testMsg{A: a, B: s, C: c, D: d}
		var out testMsg
		if err := Decode(Encode(in), &out); err != nil {
			return false
		}
		return out.A == a && out.B == s && string(out.C) == string(c) && out.D == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScalarStream property-checks interleaved scalars.
func TestQuickScalarStream(t *testing.T) {
	f := func(vals []uint64) bool {
		var b Buffer
		for _, v := range vals {
			b.PutU64(v)
		}
		r := NewReader(b.Bytes())
		for _, v := range vals {
			if r.U64() != v {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeNeverPanics feeds random garbage to the decoder.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(p []byte) bool {
		var out testMsg
		_ = Decode(p, &out) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
