package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"redbud/internal/obs"
	"redbud/internal/workload"
)

// ObsReport summarizes one traced cluster run: where commit latency goes
// (the Figure-6-style critical path), the e2e quantiles, and the virtual-time
// perturbation tracing itself introduced.
type ObsReport struct {
	System   string
	Workload string

	SpansKept    int   // spans resident in the ring at the end of the run
	SpansTotal   int64 // spans ever recorded
	SpansDropped int64 // spans overwritten after the ring filled

	Breakdown *obs.Breakdown
	P50, P99  time.Duration // per-commit e2e quantiles

	BaseDuration   time.Duration // virtual duration, tracing disabled
	TracedDuration time.Duration // virtual duration, tracing enabled
	OverheadPct    float64       // (traced-base)/base * 100
}

// RunObsBench runs the same workload twice on a delayed-commit Redbud
// cluster — once untraced for a baseline, once with the span tracer — and
// reconstructs the commit critical path from the traced run. It returns the
// report and the raw spans (for Chrome-trace export).
func RunObsBench(opt Options) (*ObsReport, []obs.Span, error) {
	spec := workload.Varmail(opt.Seed).Scale(opt.SizeFactor)

	base := opt
	base.SpanTrace = false
	c := Build(SysRedbudDC, base)
	baseRes, err := RunDistributed(c, spec)
	c.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("obs baseline run: %w", err)
	}

	traced := opt
	traced.SpanTrace = true
	c = Build(SysRedbudDC, traced)
	tracedRes, err := RunDistributed(c, spec)
	if err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("obs traced run: %w", err)
	}
	spans := c.Tracer.Spans()
	rep := &ObsReport{
		System:         c.System.String(),
		Workload:       spec.Name,
		SpansKept:      len(spans),
		SpansTotal:     c.Tracer.Total(),
		SpansDropped:   c.Tracer.Dropped(),
		Breakdown:      obs.Analyze(spans),
		BaseDuration:   baseRes.Duration,
		TracedDuration: tracedRes.Duration,
	}
	c.Close()
	if baseRes.Duration > 0 {
		rep.OverheadPct = 100 * float64(tracedRes.Duration-baseRes.Duration) / float64(baseRes.Duration)
	}
	rep.P50, rep.P99 = e2eQuantiles(rep.Breakdown.PerCommit)
	return rep, spans, nil
}

// e2eQuantiles computes p50/p99 of per-commit end-to-end latency with the
// same nearest-rank rule as stats.Quantile.
func e2eQuantiles(paths []obs.CommitPath) (p50, p99 time.Duration) {
	if len(paths) == 0 {
		return 0, 0
	}
	lat := make([]time.Duration, len(paths))
	for i, p := range paths {
		lat[i] = p.E2E
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rank := func(q float64) time.Duration {
		idx := int(math.Ceil(q*float64(len(lat)))) - 1
		if idx < 0 {
			idx = 0
		}
		return lat[idx]
	}
	return rank(0.50), rank(0.99)
}

// PrintObs renders the report as the per-stage table plus summary lines.
func PrintObs(w io.Writer, rep *ObsReport) {
	fmt.Fprintf(w, "%s / %s: %d spans kept (%d recorded, %d overwritten)\n",
		rep.System, rep.Workload, rep.SpansKept, rep.SpansTotal, rep.SpansDropped)
	fmt.Fprint(w, rep.Breakdown.Table())
	fmt.Fprintf(w, "  commit e2e p50 %v  p99 %v\n", rep.P50, rep.P99)
	fmt.Fprintf(w, "  virtual duration: untraced %v, traced %v (%+.2f%%)\n",
		rep.BaseDuration, rep.TracedDuration, rep.OverheadPct)
}
