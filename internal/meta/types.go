// Package meta implements the Redbud MDS metadata: the namespace tree,
// inodes with extent lists, layouts, and a write-ahead journal persisted on
// the metadata disk. It enforces the paper's ordered-write contract — an
// extent only ever reaches the Committed state through an explicit commit,
// and crash recovery replays the journal and garbage-collects "orphan"
// space: allocations and delegations whose commits never arrived (§I, §III).
package meta

import (
	"time"

	"redbud/internal/wire"
)

// FileID identifies an inode. The root directory is always RootID.
type FileID uint64

// RootID is the inode number of the root directory.
const RootID FileID = 1

// FileType distinguishes regular files from directories.
type FileType uint8

// File types.
const (
	TypeFile FileType = iota
	TypeDir
)

// ExtentState tracks the commit status of an extent.
type ExtentState uint8

// Extent states. Space in StateUncommitted was allocated (by the MDS at
// layout-get time, or carved by a client from a delegation) but its commit
// has not arrived; after a crash it is orphan space and is recycled.
const (
	StateUncommitted ExtentState = iota
	StateCommitted
)

// Extent is the paper's mapping unit: <file offset, length, device id,
// volume offset, state> (§V-A).
type Extent struct {
	FileOff int64
	Len     int64
	Dev     uint32
	VolOff  int64
	State   ExtentState
}

// End returns the first file offset past the extent.
func (e Extent) End() int64 { return e.FileOff + e.Len }

// MarshalWire encodes the extent.
func (e Extent) MarshalWire(b *wire.Buffer) {
	b.PutI64(e.FileOff)
	b.PutI64(e.Len)
	b.PutU32(e.Dev)
	b.PutI64(e.VolOff)
	b.PutU8(uint8(e.State))
}

// UnmarshalWire decodes the extent.
func (e *Extent) UnmarshalWire(r *wire.Reader) error {
	e.FileOff = r.I64()
	e.Len = r.I64()
	e.Dev = r.U32()
	e.VolOff = r.I64()
	e.State = ExtentState(r.U8())
	return r.Err()
}

// PutExtents encodes a length-prefixed extent list.
func PutExtents(b *wire.Buffer, exts []Extent) {
	b.PutU32(uint32(len(exts)))
	for _, e := range exts {
		e.MarshalWire(b)
	}
}

// GetExtents decodes a length-prefixed extent list.
func GetExtents(r *wire.Reader) []Extent {
	n := int(r.U32())
	if r.Err() != nil || n > 1<<20 {
		return nil
	}
	out := make([]Extent, 0, n)
	for i := 0; i < n; i++ {
		var e Extent
		if e.UnmarshalWire(r) != nil {
			return nil
		}
		out = append(out, e)
	}
	return out
}

// Layout is the collection of extents covering a range of a file (§V-A).
type Layout struct {
	File    FileID
	Extents []Extent
	// VisibleEnd is the highest file offset any published write intent of
	// the file reaches, filled in only for lookups that asked for
	// uncommitted extents (LayoutWantUncommitted). Readers that opted in
	// to early visibility use max(committed size, VisibleEnd) as the
	// file's visible size; committed-only lookups leave it 0.
	VisibleEnd int64
}

// Attr is the caller-visible attribute set of an inode.
type Attr struct {
	ID    FileID
	Type  FileType
	Size  int64
	MTime time.Time
}

// DirEnt is one directory entry.
type DirEnt struct {
	Name string
	ID   FileID
	Type FileType
	Size int64
}

// inode is the MDS-internal per-file record. Ownership of uncommitted
// extents lives in the store's intent table, not here.
type inode struct {
	id    FileID
	typ   FileType
	size  int64
	mtime time.Time
	// extents are sorted by FileOff and non-overlapping.
	extents []Extent
	nlink   int // directory entries referencing this inode
}

func (ino *inode) attr() Attr {
	return Attr{ID: ino.id, Type: ino.typ, Size: ino.size, MTime: ino.mtime}
}

// extentsIn returns the extents overlapping [off, off+n), optionally only
// committed ones.
func (ino *inode) extentsIn(off, n int64, committedOnly bool) []Extent {
	var out []Extent
	end := off + n
	for _, e := range ino.extents {
		if e.FileOff < end && off < e.End() {
			if committedOnly && e.State != StateCommitted {
				continue
			}
			out = append(out, e)
		}
	}
	return out
}
