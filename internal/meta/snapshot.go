package meta

import "sort"

// SetJournal atomically switches the store to append to j — the final step
// of a checkpoint (LogSet.Checkpoint returns the new journal).
func (s *Store) SetJournal(j *Journal) {
	s.ns.Lock()
	s.cfg.Journal = j
	s.ns.Unlock()
}

// findDelegationAny returns the delegation (any owner) containing extent e.
// Caller holds ns exclusively.
func (s *Store) findDelegationAny(e Extent) *delegation {
	for _, ds := range s.delegations {
		for _, d := range ds {
			if d.span.Dev == int(e.Dev) && e.VolOff >= d.span.Off && e.VolOff+e.Len <= d.span.End() {
				return d
			}
		}
	}
	return nil
}

// Snapshot serializes the entire store state as a record stream that, when
// replayed into a fresh store, reproduces it exactly: namespace creates
// (parents before children), delegation grants, space reservations, and
// commits. LogSet.Checkpoint writes this stream as the new compacted log.
//
// A snapshot alone is only safe to checkpoint if no mutations race the flip;
// use CheckpointTo for the atomic end-to-end operation.
func (s *Store) Snapshot() []*Record {
	s.ns.Lock()
	defer s.ns.Unlock()
	return s.snapshotLocked()
}

// CheckpointTo atomically compacts the store's log: it snapshots the state,
// writes it into ls's inactive region, flips the superblock, and switches
// the store's journal — all while holding the store lock, so no mutation can
// slip between the snapshot and the flip and be lost.
func (s *Store) CheckpointTo(ls *LogSet) error {
	s.ns.Lock()
	defer s.ns.Unlock()
	j, err := ls.Checkpoint(s.snapshotLocked())
	if err != nil {
		return err
	}
	// The compacted journal inherits the group-commit policy of the one it
	// replaces.
	j.SetBatchPolicy(s.cfg.Journal.BatchPolicy())
	s.cfg.Journal = j
	return nil
}

// snapshotLocked builds the record stream. Caller holds ns exclusively.
func (s *Store) snapshotLocked() []*Record {
	var recs []*Record

	// Extra namespace roots beyond RootID (sharded stores): local inodes
	// whose dirent lives on another shard, and detached inodes under a live
	// NSCreate intent. Both rematerialize through the RecNSIntent replay
	// path — graduated ones followed immediately by their RecNSCommit.
	intents := s.nsIntents.snapshot()
	detached := map[FileID]bool{}
	for _, in := range intents {
		if in.Kind == NSCreate {
			detached[in.File] = true
			ino := s.inodes[in.File]
			recs = append(recs, &Record{
				Type: RecNSIntent, NSKind: NSCreate, File: in.File,
				Parent: in.Parent, Name: in.Name, FType: in.Type, MTime: ino.mtime,
			})
		}
	}
	linked := make([]FileID, 0, len(s.linkedRemote))
	for id := range s.linkedRemote {
		linked = append(linked, id)
	}
	sort.Slice(linked, func(i, j int) bool { return linked[i] < linked[j] })
	for _, id := range linked {
		ino := s.inodes[id]
		recs = append(recs,
			&Record{Type: RecNSIntent, NSKind: NSCreate, File: id, FType: ino.typ, MTime: ino.mtime},
			&Record{Type: RecNSCommit, NSKind: NSCreate, File: id})
	}

	// Namespace, breadth-first with sorted names for determinism. Remote-
	// homed children re-link through RecLinkRemote and are not traversed
	// (their inodes snapshot on their home shard).
	var files []FileID
	var queue []FileID
	if _, ok := s.inodes[RootID]; ok {
		queue = append(queue, RootID)
	}
	for _, id := range linked {
		if s.inodes[id].typ == TypeDir {
			queue = append(queue, id)
		} else {
			files = append(files, id)
		}
	}
	for _, in := range intents {
		if in.Kind != NSCreate {
			continue
		}
		if s.inodes[in.File].typ == TypeDir {
			queue = append(queue, in.File)
		} else {
			files = append(files, in.File)
		}
	}
	for len(queue) > 0 {
		dir := queue[0]
		queue = queue[1:]
		names := make([]string, 0, len(s.dirents[dir]))
		for name := range s.dirents[dir] {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			cid := s.dirents[dir][name]
			ino, local := s.inodes[cid]
			if !local {
				recs = append(recs, &Record{Type: RecLinkRemote, File: cid, Parent: dir, Name: name, FType: s.remote[cid]})
				continue
			}
			recs = append(recs, &Record{Type: RecCreate, File: cid, Parent: dir, Name: name, FType: ino.typ, MTime: ino.mtime})
			if ino.typ == TypeDir {
				queue = append(queue, cid)
			} else {
				files = append(files, cid)
			}
		}
	}

	// Remaining live namespace intents (remove/rename) re-publish after the
	// namespace exists, mirroring their original journal order.
	for _, in := range intents {
		if in.Kind == NSCreate {
			continue
		}
		recs = append(recs, &Record{
			Type: RecNSIntent, NSKind: in.Kind, File: in.File, FType: in.Type,
			Parent: in.Parent, Name: in.Name, DstParent: in.DstParent, DstName: in.DstName,
		})
	}

	// Commit-point markers (see linkDone/unlinkDone): children whose
	// LinkRemote/UnlinkRemote executed here. Live remote children re-enter
	// linkDone through the traversal's RecLinkRemote records above; members
	// whose entry has since moved or died need a bare marker (no parent, so
	// replay only rebuilds the set). Every unlinkDone member is bare — its
	// entry is gone by definition.
	markers := make([]FileID, 0, len(s.linkDone))
	for id := range s.linkDone {
		if _, live := s.remote[id]; !live {
			markers = append(markers, id)
		}
	}
	sort.Slice(markers, func(i, j int) bool { return markers[i] < markers[j] })
	for _, id := range markers {
		recs = append(recs, &Record{Type: RecLinkRemote, File: id})
	}
	markers = markers[:0]
	for id := range s.unlinkDone {
		markers = append(markers, id)
	}
	sort.Slice(markers, func(i, j int) bool { return markers[i] < markers[j] })
	for _, id := range markers {
		recs = append(recs, &Record{Type: RecUnlinkRemote, File: id})
	}

	// Delegations, sorted by owner.
	owners := make([]string, 0, len(s.delegations))
	for o := range s.delegations {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	for _, o := range owners {
		for _, d := range s.delegations[o] {
			recs = append(recs, &Record{
				Type: RecDelegate, Owner: o,
				SpanDev: uint32(d.span.Dev), SpanOff: d.span.Off, SpanLen: d.span.Len,
			})
		}
	}

	// Per-file space: reservations (RecAlloc) for extents outside
	// delegations, then commits. Extents inside a delegation are covered
	// by its chunk reservation and are re-committed under the delegation
	// owner so the `used` bookkeeping is rebuilt.
	for _, fid := range files {
		ino := s.inodes[fid]
		allocByOwner := map[string][]Extent{}
		commitByOwner := map[string][]Extent{}
		var flip []Extent
		for _, e := range ino.extents {
			if d := s.findDelegationAny(e); d != nil {
				if e.State == StateCommitted {
					commitByOwner[d.owner] = append(commitByOwner[d.owner], e)
				}
				// An uncommitted extent inside a delegation cannot
				// exist at the MDS (clients allocate those locally;
				// the MDS first hears of them at commit time).
				continue
			}
			owner := ""
			if e.State == StateUncommitted {
				owner, _ = s.intents.ownerOf(fid, e)
			}
			ae := e
			ae.State = StateUncommitted
			allocByOwner[owner] = append(allocByOwner[owner], ae)
			if e.State == StateCommitted {
				flip = append(flip, e)
			}
		}
		for _, owner := range sortedKeys(allocByOwner) {
			recs = append(recs, &Record{Type: RecAlloc, File: fid, Owner: owner, Extents: allocByOwner[owner]})
		}
		// Size and mtime ride the flip commit (emitted even when empty).
		recs = append(recs, &Record{Type: RecCommit, File: fid, Size: ino.size, MTime: ino.mtime, Extents: flip})
		for _, owner := range sortedKeys(commitByOwner) {
			recs = append(recs, &Record{Type: RecCommit, File: fid, Owner: owner, Size: ino.size, MTime: ino.mtime, Extents: commitByOwner[owner]})
		}
	}
	return recs
}

func sortedKeys(m map[string][]Extent) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
