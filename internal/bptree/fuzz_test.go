package bptree

import "testing"

// FuzzTreeOps drives a random insert/delete/lookup sequence decoded from the
// fuzz input against a map oracle, validating structural invariants with
// check() after every mutation and full contents via Ascend at the end.
// Keys are kept in a small range so operations collide often — that is where
// split/merge/rebalance bugs live.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 2, 2, 1, 9})
	// Enough inserts to force leaf and internal splits, then deletions.
	ascending := make([]byte, 0, 200)
	for i := byte(0); i < 50; i++ {
		ascending = append(ascending, 0, i)
	}
	for i := byte(0); i < 50; i += 2 {
		ascending = append(ascending, 1, i)
	}
	f.Add(ascending)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := New()
		oracle := make(map[int64]int64)
		var seq int64
		for i := 0; i+1 < len(data); i += 2 {
			op, kb := data[i], data[i+1]
			k := int64(kb % 64)
			switch op % 3 {
			case 0: // insert/overwrite
				seq++
				tr.Put(k, seq)
				oracle[k] = seq
			case 1: // delete
				deleted := tr.Delete(k)
				_, inOracle := oracle[k]
				if deleted != inOracle {
					t.Fatalf("Delete(%d) = %v, oracle has it = %v", k, deleted, inOracle)
				}
				delete(oracle, k)
			case 2: // lookup
				v, ok := tr.Get(k)
				ov, ook := oracle[k]
				if ok != ook || (ok && v != ov) {
					t.Fatalf("Get(%d) = (%d, %v), oracle (%d, %v)", k, v, ok, ov, ook)
				}
			}
			tr.check()
			if tr.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
			}
		}
		// Final sweep: Ascend must enumerate exactly the oracle, in order.
		var prev int64 = -1
		n := 0
		tr.Ascend(func(k, v int64) bool {
			if k <= prev {
				t.Fatalf("Ascend out of order: %d after %d", k, prev)
			}
			if ov, ok := oracle[k]; !ok || ov != v {
				t.Fatalf("Ascend yielded (%d, %d), oracle (%d, %v)", k, v, ov, ok)
			}
			prev = k
			n++
			return true
		})
		if n != len(oracle) {
			t.Fatalf("Ascend yielded %d pairs, oracle %d", n, len(oracle))
		}
	})
}
