package client

import (
	"math/rand"
	"testing"

	"redbud/internal/meta"
	"redbud/internal/proto"
)

// TestGapsLockedVsBitmap property-checks the extent-coverage gap computation
// against a bitmap reference.
func TestGapsLockedVsBitmap(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const space = 1 << 16
	for trial := 0; trial < 200; trial++ {
		fs := newFileState(1, 0)
		covered := make([]bool, space)
		// Insert random non-overlapping extents via the real path.
		for i := 0; i < 20; i++ {
			off := int64(rng.Intn(space - 256))
			ln := int64(rng.Intn(256) + 1)
			fs.insertExtentLocked(meta.Extent{FileOff: off, Len: ln, VolOff: off})
		}
		// Rebuild the bitmap from what actually landed.
		for _, e := range fs.extents {
			for j := e.FileOff; j < e.End(); j++ {
				covered[j] = true
			}
		}
		// Probe random ranges.
		for probe := 0; probe < 20; probe++ {
			a := int64(rng.Intn(space - 512))
			b := a + int64(rng.Intn(512)+1)
			gaps := fs.gapsLocked(a, b)
			// Reference: runs of uncovered positions.
			var ref [][2]int64
			run := int64(-1)
			for j := a; j <= b; j++ {
				if j < b && !covered[j] {
					if run < 0 {
						run = j
					}
				} else if run >= 0 {
					ref = append(ref, [2]int64{run, j})
					run = -1
				}
			}
			if len(gaps) != len(ref) {
				t.Fatalf("trial %d probe [%d,%d): gaps %v, want %v", trial, a, b, gaps, ref)
			}
			for i := range ref {
				if gaps[i] != ref[i] {
					t.Fatalf("trial %d probe [%d,%d): gaps %v, want %v", trial, a, b, gaps, ref)
				}
			}
		}
		// Structural invariant: extents sorted and non-overlapping.
		for i := 1; i < len(fs.extents); i++ {
			if fs.extents[i-1].End() > fs.extents[i].FileOff {
				t.Fatalf("trial %d: extents overlap: %+v", trial, fs.extents)
			}
		}
	}
}

// TestUncachedRangesVsBitmap property-checks the page-cache hole scan.
func TestUncachedRangesVsBitmap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		fs := newFileState(1, 0)
		const pages = 32
		present := make([]bool, pages)
		for i := 0; i < pages; i++ {
			if rng.Intn(2) == 0 {
				fs.pages[int64(i)] = make([]byte, PageSize)
				present[i] = true
			}
		}
		a := int64(rng.Intn(pages*PageSize - 1))
		b := a + int64(rng.Intn(pages*PageSize-int(a))+1)
		got := fs.uncachedRanges(a, b)
		// Compare coverage: every uncached byte must be inside some
		// reported range, and no cached byte may be.
		inGot := func(j int64) bool {
			for _, g := range got {
				if j >= g[0] && j < g[1] {
					return true
				}
			}
			return false
		}
		for j := a; j < b; j++ {
			cached := present[j/PageSize]
			if !cached && !inGot(j) {
				t.Fatalf("trial %d: uncached byte %d not reported (a=%d b=%d got=%v)", trial, j, a, b, got)
			}
			if cached && inGot(j) {
				t.Fatalf("trial %d: cached byte %d reported as missing (got=%v)", trial, j, got)
			}
		}
	}
}

// TestFinishCommitMatchesFullExtentIdentity regresses the phantom-commit
// bug: volume offsets repeat across devices (every device lays its AGs out
// from the same bases), so finishCommit must match the acked extents by
// (FileOff, Dev, VolOff), not VolOff alone. With the old VolOff-only match,
// an extent written concurrently with an in-flight commit — same VolOff on
// a different device — was marked committed without ever being sent, the
// MDS never learned about it, and cross-client reads saw a hole (the flaky
// NPB BT conflict-read failure).
func TestFinishCommitMatchesFullExtentIdentity(t *testing.T) {
	c := &Client{}
	fs := newFileState(1, 0)
	sent := meta.Extent{FileOff: 0, Len: 4096, Dev: 0, VolOff: 8192, State: meta.StateUncommitted}
	fs.insertExtentLocked(sent)
	req := &proto.CommitReq{File: fs.id, Size: 4096, Extents: []meta.Extent{sent}}

	// While the commit RPC is "in flight", a new write lands on another
	// device at the same volume offset.
	racer := meta.Extent{FileOff: 8192, Len: 4096, Dev: 1, VolOff: 8192, State: meta.StateUncommitted}
	fs.insertExtentLocked(racer)
	fs.dirtyMeta = true

	c.finishCommit(fs, req, nil)

	var gotSent, gotRacer meta.Extent
	for _, e := range fs.extents {
		switch e.FileOff {
		case sent.FileOff:
			gotSent = e
		case racer.FileOff:
			gotRacer = e
		}
	}
	if gotSent.State != meta.StateCommitted {
		t.Errorf("sent extent not marked committed: %+v", gotSent)
	}
	if gotRacer.State != meta.StateUncommitted {
		t.Errorf("unsent extent spuriously marked committed: %+v", gotRacer)
	}
	if !fs.dirtyMeta {
		t.Error("dirtyMeta cleared while an unsent extent is outstanding")
	}
}
