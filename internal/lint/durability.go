package lint

import (
	"go/ast"
	"go/types"
)

// Durability statically encodes the paper's ordered-write rule: a commit RPC
// may leave the client only after every write it covers is durable. In
// analyzer terms, every statement that sends OpCommit must be dominated — in
// source order within its function — by a durability wait:
//
//   - a call to (*sync.Cond).Wait() (the client's per-file durability
//     barrier loops on fs.cond.Wait() until pendingWrites drains), or
//   - a call to a method or function whose name is WaitDurable or Sync, or
//   - a call to a same-package function that itself (transitively) contains
//     such a wait — e.g. buildCommit, which embeds the wait loop.
//
// Commit-send sites are calls to (*rpc.Client).Call / CallRaw whose first
// argument is the constant proto.OpCommit, and composite literals
// rpc.SubOp{Op: proto.OpCommit} (the compound-RPC path).
var Durability = &Analyzer{
	Name: "durability",
	Doc:  "commit RPCs must be dominated by a durability wait (ordered-write rule)",
	Run:  runDurability,
}

func runDurability(pass *Pass) error {
	// Only the client and MDS issue commits; other packages are out of scope.
	switch pass.Pkg.Name() {
	case "client", "mds":
	default:
		return nil
	}

	// Pass 1: compute the wait set W — package functions/methods that
	// (transitively) perform a durability wait — by fixpoint over the
	// same-package static call graph.
	waiters := make(map[types.Object]bool)
	type fnDecl struct {
		obj  types.Object
		decl *ast.FuncDecl
	}
	var decls []fnDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			decls = append(decls, fnDecl{obj, fn})
			if containsBaseWait(pass, fn.Body) {
				waiters[obj] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if waiters[d.obj] {
				continue
			}
			found := false
			ast.Inspect(d.decl.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if obj := calleeOf(pass.Info, call); obj != nil && waiters[obj] {
						found = true
					}
				}
				return true
			})
			if found {
				waiters[d.obj] = true
				changed = true
			}
		}
	}

	isWaitCall := func(call *ast.CallExpr) bool {
		if isBaseWait(pass, call) {
			return true
		}
		obj := calleeOf(pass.Info, call)
		return obj != nil && waiters[obj]
	}

	// Pass 2: in each function, every commit-send site must be preceded (in
	// source order) by a wait call.
	for _, d := range decls {
		if pass.IsTestFile(d.decl.Pos()) {
			continue
		}
		waited := false
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if isWaitCall(e) {
					waited = true
				}
				if isCommitSend(pass, e) && !waited {
					pass.Reportf(e.Pos(),
						"commit RPC issued without a dominating durability wait (WaitDurable/Sync/cond.Wait): data must be durable before the commit leaves")
				}
			case *ast.CompositeLit:
				if isCommitSubOp(pass, e) && !waited {
					pass.Reportf(e.Pos(),
						"compound commit sub-op built without a dominating durability wait (WaitDurable/Sync/cond.Wait)")
				}
			}
			return true
		})
	}
	return nil
}

// containsBaseWait reports whether body directly contains a durability wait.
func containsBaseWait(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBaseWait(pass, call) {
			found = true
		}
		return true
	})
	return found
}

// isBaseWait recognizes the primitive durability waits: (*sync.Cond).Wait,
// and any method/function literally named WaitDurable or Sync.
func isBaseWait(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeOf(pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "WaitDurable", "Sync":
		return true
	case "Wait":
		return isNamedType(recvTypeOf(pass.Info, call), "sync", "Cond")
	}
	return false
}

// isCommitSend reports whether call is (*rpc.Client).Call/CallRaw with first
// argument proto.OpCommit.
func isCommitSend(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeOf(pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "Call", "CallRaw":
	default:
		return false
	}
	if !isNamedType(recvTypeOf(pass.Info, call), "rpc", "Client") {
		return false
	}
	return len(call.Args) > 0 && isOpCommit(pass, call.Args[0])
}

// isCommitSubOp reports whether lit is rpc.SubOp{..., Op: proto.OpCommit, ...}.
func isCommitSubOp(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Info.Types[lit]
	if !ok || !isNamedType(tv.Type, "rpc", "SubOp") {
		return false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Op" && isOpCommit(pass, kv.Value) {
			return true
		}
	}
	return false
}

// isOpCommit reports whether expr resolves to the constant OpCommit from a
// package named proto.
func isOpCommit(pass *Pass, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return false
	}
	obj := pass.Info.Uses[id]
	c, ok := obj.(*types.Const)
	if !ok || c.Name() != "OpCommit" {
		return false
	}
	return c.Pkg() != nil && c.Pkg().Name() == "proto"
}
