// Package wire is the hand-rolled binary codec used by the RPC layer and the
// MDS journal. It favours predictable, allocation-light encoding over
// generality: fixed-width little-endian integers, length-prefixed byte
// strings, and sticky-error readers so call sites can decode a whole message
// and check the error once.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"
)

// ErrTruncated is reported when a reader runs past the end of its buffer.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLong is reported when a length prefix exceeds the sanity cap.
var ErrTooLong = errors.New("wire: length prefix too large")

// maxLen caps byte-string lengths to defend against corrupt frames.
const maxLen = 64 << 20

// Marshaler is implemented by every wire message.
type Marshaler interface{ MarshalWire(*Buffer) }

// Unmarshaler is implemented by every wire message.
type Unmarshaler interface{ UnmarshalWire(*Reader) error }

// Buffer is an append-only encoder.
type Buffer struct{ b []byte }

// NewBuffer returns a buffer with the given capacity hint.
func NewBuffer(capacity int) *Buffer { return &Buffer{b: make([]byte, 0, capacity)} }

// Bytes returns the encoded bytes. The slice aliases the buffer.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the number of encoded bytes.
func (w *Buffer) Len() int { return len(w.b) }

// Reset truncates the buffer for reuse.
func (w *Buffer) Reset() { w.b = w.b[:0] }

// PutU8 appends one byte.
func (w *Buffer) PutU8(v uint8) { w.b = append(w.b, v) }

// PutBool appends a boolean as one byte.
func (w *Buffer) PutBool(v bool) {
	if v {
		w.PutU8(1)
	} else {
		w.PutU8(0)
	}
}

// PutU16 appends a little-endian uint16.
func (w *Buffer) PutU16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }

// PutU32 appends a little-endian uint32.
func (w *Buffer) PutU32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }

// PutU64 appends a little-endian uint64.
func (w *Buffer) PutU64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

// PutI64 appends a little-endian int64.
func (w *Buffer) PutI64(v int64) { w.PutU64(uint64(v)) }

// PutF64 appends an IEEE-754 float64.
func (w *Buffer) PutF64(v float64) { w.PutU64(math.Float64bits(v)) }

// PutDuration appends a duration as nanoseconds.
func (w *Buffer) PutDuration(d time.Duration) { w.PutI64(int64(d)) }

// PutTime appends a time as Unix nanoseconds.
func (w *Buffer) PutTime(t time.Time) { w.PutI64(t.UnixNano()) }

// PutRaw appends p verbatim, with no length prefix. Used for frame payloads
// whose length is delimited by the frame itself.
func (w *Buffer) PutRaw(p []byte) { w.b = append(w.b, p...) }

// PutBytes appends a u32 length prefix followed by the bytes.
func (w *Buffer) PutBytes(p []byte) {
	w.PutU32(uint32(len(p)))
	w.b = append(w.b, p...)
}

// PutString appends a length-prefixed string.
func (w *Buffer) PutString(s string) {
	w.PutU32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// Reader is a sticky-error decoder over a byte slice.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps p for decoding. The reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{b: p} }

// Reset rewinds the reader onto p, clearing any sticky error. It lets hot
// paths keep a stack-allocated Reader instead of calling NewReader per frame.
func (r *Reader) Reset(p []byte) { *r = Reader{b: p} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, r.Remaining()))
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// U8 decodes one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool decodes a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 decodes a little-endian uint16.
func (r *Reader) U16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// U32 decodes a little-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 decodes a little-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 decodes a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 decodes an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Duration decodes a nanosecond duration.
func (r *Reader) Duration() time.Duration { return time.Duration(r.I64()) }

// Time decodes a Unix-nanosecond time in UTC.
func (r *Reader) Time() time.Time { return time.Unix(0, r.I64()).UTC() }

// Bytes decodes a length-prefixed byte string. The result is a copy.
func (r *Reader) Bytes() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n > maxLen {
		r.fail(fmt.Errorf("%w: %d", ErrTooLong, n))
		return nil
	}
	p := r.take(int(n))
	if p == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

// BytesRef decodes a length-prefixed byte string without copying: the result
// aliases the reader's underlying buffer. Use only when the buffer outlives
// the decoded value and has a single consumer (e.g. RPC frames handed to
// exactly one waiter).
func (r *Reader) BytesRef() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n > maxLen {
		r.fail(fmt.Errorf("%w: %d", ErrTooLong, n))
		return nil
	}
	return r.take(int(n))
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	if n > maxLen {
		r.fail(fmt.Errorf("%w: %d", ErrTooLong, n))
		return ""
	}
	p := r.take(int(n))
	return string(p)
}

// bufPool recycles encode buffers across the RPC framing and journal append
// hot paths. Oversized buffers are dropped on Put so one huge message cannot
// pin its allocation forever.
var bufPool = sync.Pool{New: func() any { return new(Buffer) }}

// maxPooledBuf is the largest buffer capacity returned to the pool.
const maxPooledBuf = 64 << 10

// GetBuffer returns an empty encode buffer from the pool. Release it with
// PutBuffer once the encoded bytes have been copied out (device and network
// Send paths copy before returning).
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.Reset()
	return b
}

// PutBuffer recycles a buffer obtained from GetBuffer. The caller must not
// touch the buffer (or slices aliasing it) afterwards.
func PutBuffer(b *Buffer) {
	if cap(b.b) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// ---------------------------------------------------------------------------
// Frame pool
//
// Network frames are the other recurring allocation of the messaging hot
// path: every Send copies the caller's buffer (the caller may reuse it), and
// every Recv hands that copy to exactly one consumer. The pool below closes
// the loop — transports take their copy buffers from GetFrame, and the final
// consumer (the RPC read loops) returns them with PutFrame once the frame's
// bytes have been decoded or copied out.
//
// The pool is a set of power-of-two capacity classes, each a buffered
// channel used as a free list. Channels rather than sync.Pool because a
// []byte moving through an interface{} is boxed — sync.Pool.Put would
// allocate the very header the pool exists to avoid — while channel sends of
// slice values copy only the header. Misuse degrades gracefully: a frame
// that is never Put is garbage collected; a consumer that keeps a frame
// simply must not Put it.

const (
	minFrameBits    = 8  // smallest pooled class: 256 B
	maxFrameBits    = 16 // largest pooled class: 64 KiB
	frameClassCount = maxFrameBits - minFrameBits + 1
)

var framePools [frameClassCount]chan []byte

func init() {
	for i := range framePools {
		// Deeper free lists for the small classes that dominate RPC
		// traffic; a few entries suffice for the rare large frames.
		entries := 1024 >> i
		if entries < 16 {
			entries = 16
		}
		framePools[i] = make(chan []byte, entries)
	}
}

// frameClass maps a capacity to its pool index. Caller guarantees n is
// within the pooled range.
func frameClass(n int) int {
	b := bits.Len(uint(n - 1))
	if b < minFrameBits {
		b = minFrameBits
	}
	return b - minFrameBits
}

// GetFrame returns a frame buffer of length n, reusing a pooled buffer when
// one is available. Frames longer than the largest class are allocated
// directly and silently ignored by PutFrame.
//
//redbud:hotpath
func GetFrame(n int) []byte {
	if n > 1<<maxFrameBits {
		return make([]byte, n)
	}
	cls := frameClass(n)
	select {
	case f := <-framePools[cls]:
		return f[:n]
	default:
		return make([]byte, n, 1<<(cls+minFrameBits))
	}
}

// PutFrame recycles a buffer obtained from GetFrame. Only the frame's final
// consumer may call it, and the frame (or anything aliasing it) must not be
// touched afterwards. Buffers whose capacity is not a pool class — including
// every slice not minted by GetFrame — are dropped, so stray Puts cannot
// poison the pool.
//
//redbud:hotpath
func PutFrame(f []byte) {
	c := cap(f)
	if c < 1<<minFrameBits || c > 1<<maxFrameBits || c&(c-1) != 0 {
		return
	}
	select {
	case framePools[frameClass(c)] <- f[:c]:
	default: // class full; let the GC have it
	}
}

// Encode marshals m into a fresh byte slice.
func Encode(m Marshaler) []byte {
	var b Buffer
	m.MarshalWire(&b)
	return b.Bytes()
}

// Decode unmarshals p into m, requiring the whole buffer to be consumed.
func Decode(p []byte, m Unmarshaler) error {
	r := NewReader(p)
	if err := m.UnmarshalWire(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after decode", r.Remaining())
	}
	return nil
}
