// Package clock abstracts time for the simulated cluster.
//
// Every latency-bearing component in this repository (the simulated disk
// array, the network fabric, the MDS daemon pool, workload think time) takes
// a Clock rather than calling the time package directly. That allows three
// operating modes:
//
//   - Real(1.0): wall-clock time, used when running the real TCP deployment.
//   - Real(scale) with scale < 1: virtual time compressed by 1/scale, used by
//     the experiment harness so that a "5 ms disk seek" costs only
//     5ms*scale of wall time while all reported numbers stay in virtual
//     time. Relative latencies — the thing the paper's figures depend on —
//     are preserved exactly.
//   - Manual: a hand-advanced clock for deterministic unit tests.
//
// Durations passed to Sleep/After and values returned by Now/Since are always
// in virtual time.
package clock

import (
	"sync"
	"time"
)

// Clock is the time source used throughout the simulator.
type Clock interface {
	// Now returns the current virtual time.
	Now() time.Time
	// Sleep blocks for d of virtual time. Non-positive d returns immediately.
	Sleep(d time.Duration)
	// After returns a channel that delivers the (virtual) time after d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// Since is shorthand for Now().Sub(t).
	Since(t time.Time) time.Duration
}

// Epoch is the virtual time at which scaled clocks start. Using a fixed epoch
// keeps experiment traces comparable across runs.
var Epoch = time.Date(2012, 9, 24, 0, 0, 0, 0, time.UTC) // CLUSTER'12 week

// realClock maps virtual durations to wall durations by a constant factor.
type realClock struct {
	scale float64 // wall seconds per virtual second, in (0, 1]
	start time.Time
}

// Real returns a clock whose virtual time runs 1/scale times faster than wall
// time. Real(1) behaves like the time package. Panics if scale is not in
// (0, 1].
func Real(scale float64) Clock {
	if scale <= 0 || scale > 1 {
		panic("clock: scale must be in (0, 1]")
	}
	return &realClock{scale: scale, start: time.Now()} //lint:allow wallclock — Real is the wall-clock bridge
}

func (c *realClock) Now() time.Time {
	wall := time.Since(c.start) //lint:allow wallclock — Real is the wall-clock bridge
	return Epoch.Add(time.Duration(float64(wall) / c.scale))
}

func (c *realClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) * c.scale)) //lint:allow wallclock — Real is the wall-clock bridge
}

func (c *realClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.Now()
		return ch
	}
	wall := time.Duration(float64(d) * c.scale)
	go func() {
		time.Sleep(wall) //lint:allow wallclock — Real is the wall-clock bridge
		ch <- c.Now()
	}()
	return ch
}

func (c *realClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// waiter is a goroutine blocked on a Manual clock.
type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// Manual is a hand-advanced clock for deterministic tests. The zero value is
// not usable; construct with NewManual.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

// NewManual returns a Manual clock starting at Epoch.
func NewManual() *Manual { return &Manual{now: Epoch} }

// Now returns the current manual time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep blocks until Advance moves the clock past the deadline.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After returns a channel fired once Advance moves the clock to now+d.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &waiter{deadline: m.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- m.now
		return w.ch
	}
	m.waiters = append(m.waiters, w)
	return w.ch
}

// Since is shorthand for Now().Sub(t).
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

// Advance moves the clock forward by d, waking every sleeper whose deadline
// has been reached. Panics on negative d.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: negative advance")
	}
	m.mu.Lock()
	m.now = m.now.Add(d)
	var remaining []*waiter
	for _, w := range m.waiters {
		if !w.deadline.After(m.now) {
			w.ch <- m.now
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()
}

// Waiters reports how many goroutines are currently blocked on the clock.
// Useful for tests that must advance until a component quiesces.
func (m *Manual) Waiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

// NextDeadline returns the earliest pending waiter deadline and true, or the
// zero time and false when nothing is waiting.
func (m *Manual) NextDeadline() (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.waiters) == 0 {
		return time.Time{}, false
	}
	min := m.waiters[0].deadline
	for _, w := range m.waiters[1:] {
		if w.deadline.Before(min) {
			min = w.deadline
		}
	}
	return min, true
}

// AdvanceToNext advances to the earliest pending deadline, returning false if
// no waiter exists.
func (m *Manual) AdvanceToNext() bool {
	dl, ok := m.NextDeadline()
	if !ok {
		return false
	}
	m.Advance(dl.Sub(m.Now()))
	return true
}
