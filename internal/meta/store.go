package meta

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/clock"
	"redbud/internal/obs"
	"redbud/internal/stats"
)

// Store errors.
var (
	ErrNotFound     = errors.New("meta: not found")
	ErrExists       = errors.New("meta: already exists")
	ErrNotDir       = errors.New("meta: not a directory")
	ErrIsDir        = errors.New("meta: is a directory")
	ErrNotEmpty     = errors.New("meta: directory not empty")
	ErrBadCommit    = errors.New("meta: commit references unallocated space")
	ErrNoDelegation = errors.New("meta: no such delegation")
	ErrInvalidName  = errors.New("meta: invalid name")
	ErrLoop         = errors.New("meta: directory would become its own ancestor")
	ErrNoJournal    = errors.New("meta: recovery requires a journal")
	ErrLogTooLarge  = errors.New("meta: log set does not fit on device")
	// ErrIntentConflict reports a write-intent publish that would duplicate
	// a live intent held by a different owner — allocator accounting
	// corruption, since no two clients may ever be handed the same space.
	ErrIntentConflict = errors.New("meta: conflicting write intent")
	// ErrNSConflict reports a namespace operation blocked by a live
	// cross-shard namespace intent (see shard.go): the inode or name is in
	// the middle of a two-phase create/remove/rename and the operation must
	// wait for it to resolve.
	ErrNSConflict = errors.New("meta: conflicting namespace intent")
	// ErrWrongShard reports an operation addressed to a shard that is not
	// the inode's home — a client routed by a stale shard map, or a
	// cross-shard operation sent down the single-shard path.
	ErrWrongShard = errors.New("meta: inode homed on another shard")
)

// Config configures a Store.
type Config struct {
	AGs *alloc.AGSet
	// Journal persists mutations; nil runs the store volatile (tests).
	Journal *Journal
	Clock   clock.Clock
	// MaxSpan bounds a single allocated extent (0 = unbounded).
	MaxSpan int64
	// Tracer, if non-nil, records mds.lockwait / mds.apply / mds.journal
	// spans for every traced commit on track "mds/store" ("mds<i>/store"
	// when sharded, so each shard exports as its own trace process). Spans
	// are recorded only after all store locks are released.
	Tracer *obs.Tracer
	// Shard / ShardCount place this store in a sharded namespace (see
	// shard.go): the store homes only the inodes ShardOf maps to Shard,
	// mints only ids it owns, and seeds the root directory only when it owns
	// RootID. ShardCount <= 1 selects the classic single-store behaviour.
	Shard      int
	ShardCount int
}

// delegation is a chunk of physical space granted to one client, which
// carves small-file extents from it locally.
type delegation struct {
	owner string
	span  alloc.Span
	// mu guards used against concurrent commits, which run under the
	// shared namespace lock. Holders of the exclusive namespace lock may
	// access used directly: every mutator holds at least the shared lock,
	// so exclusive acquisition quiesces them all.
	mu sync.Mutex
	// used records committed sub-ranges (relative to the device, sorted,
	// coalesced). The complement within span is orphan space on GC.
	used []ival
}

type ival struct{ off, end int64 }

// removeIval deletes [off, end) from a sorted coalesced list, splitting
// intervals as needed.
func removeIval(list []ival, off, end int64) []ival {
	if end <= off {
		return list
	}
	out := list[:0:0]
	for _, u := range list {
		if u.end <= off || u.off >= end {
			out = append(out, u)
			continue
		}
		if u.off < off {
			out = append(out, ival{u.off, off})
		}
		if u.end > end {
			out = append(out, ival{end, u.end})
		}
	}
	return out
}

// addIval inserts [off, end) into a sorted coalesced list.
func addIval(list []ival, off, end int64) []ival {
	i := sort.Search(len(list), func(i int) bool { return list[i].end >= off })
	j := i
	for j < len(list) && list[j].off <= end {
		if list[j].off < off {
			off = list[j].off
		}
		if list[j].end > end {
			end = list[j].end
		}
		j++
	}
	out := make([]ival, 0, len(list)-(j-i)+1)
	out = append(out, list[:i]...)
	out = append(out, ival{off, end})
	out = append(out, list[j:]...)
	return out
}

// gaps returns the sub-ranges of [off, end) not covered by used.
func gaps(off, end int64, used []ival) []ival {
	var out []ival
	cur := off
	for _, u := range used {
		if u.end <= cur {
			continue
		}
		if u.off >= end {
			break
		}
		if u.off > cur {
			out = append(out, ival{cur, u.off})
		}
		if u.end > cur {
			cur = u.end
		}
	}
	if cur < end {
		out = append(out, ival{cur, end})
	}
	return out
}

// inodeStripes is the size of the per-inode lock stripe array. FileIDs are
// assigned sequentially, so a burst of commits to recently created files
// lands on distinct stripes.
const inodeStripes = 64

// Store is the MDS metadata state machine. All public mutating methods are
// journaled; the journal slot is reserved while the in-memory mutation is
// applied under the lock that ordered it, so replay order equals apply order,
// and the method only returns once the record is durable (write-ahead rule:
// clients never observe an acknowledgement that a crash can roll back).
//
// Concurrency model (lock order: namespace -> inode stripe -> intent table
// -> ns-intent table -> delegation -> journal reservation):
//
//   - ns guards the map structure (inodes, dirents, nextID, delegations) and
//     is the operation-ordering lock. Namespace mutations (Create, Remove,
//     Rename), delegation grant/return/revoke, and whole-store passes
//     (snapshot, checkpoint, replay, fsck) take it exclusively. Per-inode
//     operations — the commit hot path — take it shared, so commits to
//     different files never queue behind one another on it.
//   - stripes[id%inodeStripes] guards one inode's mutable content (extents,
//     size, mtime). It is only acquired while holding ns; because every
//     content mutator holds at least ns.RLock, an exclusive ns holder owns
//     all inode content and skips stripe locks entirely.
//   - intents.mu guards the write-intent table (uncommitted-extent
//     ownership and the early-visibility size index). It may be taken under
//     a stripe lock (publish/graduate during alloc/commit) and is never
//     held across a blocking operation.
//   - nsIntents.mu guards the cross-shard namespace-intent table (see
//     shard.go); all its mutations run under the exclusive namespace lock.
//   - delegation.mu guards the delegation's used list against concurrent
//     commits (see the field comment).
//
// Operations on the same inode serialize on its stripe and reserve their
// journal slots in that order; operations on different inodes commute, so
// their relative journal order is irrelevant to replay. Cross-inode ordering
// that does matter (create before first commit, every per-file record before
// its remove, delegate before commits into the chunk) is inherited from the
// namespace lock: the exclusive holder reserves its slot before releasing,
// and shared holders can only observe its effects afterwards.
type Store struct {
	cfg   Config
	clk   clock.Clock
	track string // span track: "mds/store", or "mds<i>/store" when sharded

	// Cross-shard namespace saga counters, exported for the SLO plane: every
	// intent publish, graduation, and rollback this shard executed.
	nsPrepares stats.Counter
	nsCommits  stats.Counter
	nsAborts   stats.Counter

	ns          sync.RWMutex
	stripes     [inodeStripes]sync.RWMutex
	inodes      map[FileID]*inode
	dirents     map[FileID]map[string]FileID
	nextID      FileID
	delegations map[string][]*delegation

	// intents indexes live write intents (uncommitted extents) by file and
	// owner; see intentTable for the lifecycle and its lock's place in the
	// hierarchy.
	intents *intentTable

	// Cross-shard state (see shard.go). remote maps children listed in a
	// local dirent whose inode is homed on another shard to their type;
	// linkedRemote marks local inodes whose dirent lives on another shard;
	// nsIntents holds the shard's live namespace intents. All guarded by ns.
	remote       map[FileID]FileType
	linkedRemote map[FileID]struct{}
	nsIntents    *nsIntentTable
	// linkDone / unlinkDone record the children whose cross-shard commit
	// point this shard has executed (LinkRemote insert / UnlinkRemote
	// delete). They make the commit-point RPCs exactly-once rather than
	// merely idempotent: after a concurrent rename moves the entry, a retry
	// must neither re-insert the dirent (forking a second reference) nor
	// report an unlink it never performed (freeing a live inode), so an
	// absent entry is answered from these sets — success when the commit
	// provably happened here, ErrNotFound otherwise. Inode ids are minted
	// once and never reused, so membership is permanent; the sets grow only
	// with completed cross-shard operations and persist through the
	// journaled RecLinkRemote/RecUnlinkRemote records and their snapshot
	// markers.
	linkDone   map[FileID]struct{}
	unlinkDone map[FileID]struct{}
}

// stripe returns the content lock of inode id.
func (s *Store) stripe(id FileID) *sync.RWMutex {
	return &s.stripes[uint64(id)%inodeStripes]
}

// NewStore returns a fresh store containing only the root directory (on the
// shard that owns RootID; other shards of a sharded namespace start empty).
func NewStore(cfg Config) *Store {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real(1)
	}
	if cfg.ShardCount <= 1 {
		cfg.Shard, cfg.ShardCount = 0, 1
	}
	track := "mds/store"
	if cfg.ShardCount > 1 {
		track = fmt.Sprintf("mds%d/store", cfg.Shard)
	}
	s := &Store{
		cfg:          cfg,
		clk:          cfg.Clock,
		track:        track,
		inodes:       make(map[FileID]*inode),
		dirents:      make(map[FileID]map[string]FileID),
		nextID:       RootID + 1,
		delegations:  make(map[string][]*delegation),
		intents:      newIntentTable(),
		remote:       make(map[FileID]FileType),
		linkedRemote: make(map[FileID]struct{}),
		nsIntents:    newNSIntentTable(),
		linkDone:     make(map[FileID]struct{}),
		unlinkDone:   make(map[FileID]struct{}),
	}
	if s.ownsID(RootID) {
		s.inodes[RootID] = &inode{id: RootID, typ: TypeDir, mtime: s.clk.Now(), nlink: 1}
		s.dirents[RootID] = make(map[string]FileID)
	}
	return s
}

// RegisterMetrics exposes the store's namespace size and journal
// group-commit counters in a metrics registry.
func (s *Store) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("redbud_meta_files", "inodes (files + directories) in the namespace", nil,
		func() int64 {
			s.ns.RLock()
			n := int64(len(s.inodes))
			s.ns.RUnlock()
			return n
		})
	r.CounterFunc("redbud_meta_ns_prepares_total", "cross-shard namespace intents published", nil,
		s.nsPrepares.Load)
	r.CounterFunc("redbud_meta_ns_commits_total", "cross-shard namespace intents committed (rolled forward)", nil,
		s.nsCommits.Load)
	r.CounterFunc("redbud_meta_ns_aborts_total", "cross-shard namespace intents aborted (rolled back)", nil,
		s.nsAborts.Load)
	r.GaugeFunc("redbud_meta_ns_intents", "live cross-shard namespace intents (saga backlog)", nil,
		s.nsIntents.count)
	if j := s.cfg.Journal; j != nil {
		r.CounterFunc("redbud_meta_journal_appends_total", "journal records appended", nil,
			func() int64 { a, _ := j.GroupCommitStats(); return a })
		r.CounterFunc("redbud_meta_journal_batches_total", "journal group-commit batches flushed", nil,
			func() int64 { _, b := j.GroupCommitStats(); return b })
	}
}

// journalAppend appends rec (if a journal is configured) while the caller
// holds the lock that ordered the mutation, then waits for durability after
// the caller releases it. It returns a wait function; call it with the lock
// dropped.
func (s *Store) journalAppend(rec *Record) func() error {
	if s.cfg.Journal == nil {
		return func() error { return nil }
	}
	ch := s.cfg.Journal.Append(rec)
	return func() error { return <-ch }
}

// ---------------------------------------------------------------------------
// Namespace operations

// Create makes a file or directory under parent and returns its attributes.
func (s *Store) Create(parent FileID, name string, typ FileType) (Attr, error) {
	if name == "" || name == "." || name == ".." {
		return Attr{}, fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	s.ns.Lock()
	dir, ok := s.dirents[parent]
	if !ok {
		s.ns.Unlock()
		return Attr{}, fmt.Errorf("%w: parent %d", ErrNotFound, parent)
	}
	if _, dup := dir[name]; dup {
		s.ns.Unlock()
		return Attr{}, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if s.nsIntents.removePending(parent) {
		s.ns.Unlock()
		return Attr{}, fmt.Errorf("%w: directory %d has a pending remove", ErrNSConflict, parent)
	}
	if s.nsIntents.reservedName(parent, name) {
		s.ns.Unlock()
		return Attr{}, fmt.Errorf("%w: %q reserved by a pending rename", ErrNSConflict, name)
	}
	id := s.mintID()
	s.applyCreate(id, parent, name, typ, s.clk.Now())
	attr := s.inodes[id].attr()
	wait := s.journalAppend(&Record{Type: RecCreate, File: id, Parent: parent, Name: name, FType: typ, MTime: attr.MTime})
	s.ns.Unlock()
	if err := wait(); err != nil {
		return Attr{}, err
	}
	return attr, nil
}

// applyCreate mutates state; caller holds ns exclusively.
func (s *Store) applyCreate(id, parent FileID, name string, typ FileType, mtime time.Time) {
	ino := &inode{id: id, typ: typ, mtime: mtime, nlink: 1}
	s.inodes[id] = ino
	s.dirents[parent][name] = id
	if typ == TypeDir {
		s.dirents[id] = make(map[string]FileID)
	}
	if id >= s.nextID {
		s.nextID = id + 1
	}
}

// Lookup resolves name under parent.
func (s *Store) Lookup(parent FileID, name string) (Attr, error) {
	s.ns.RLock()
	defer s.ns.RUnlock()
	dir, ok := s.dirents[parent]
	if !ok {
		return Attr{}, fmt.Errorf("%w: parent %d", ErrNotFound, parent)
	}
	id, ok := dir[name]
	if !ok {
		return Attr{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if _, local := s.inodes[id]; !local {
		// A child homed on another shard: serve identity and type from the
		// edge record; size and mtime live on the home shard (GetAttr
		// there).
		if t, ok := s.remote[id]; ok {
			return Attr{ID: id, Type: t}, nil
		}
		return Attr{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	st := s.stripe(id)
	st.RLock()
	attr := s.inodes[id].attr()
	st.RUnlock()
	return attr, nil
}

// GetAttr returns the attributes of an inode.
func (s *Store) GetAttr(id FileID) (Attr, error) {
	s.ns.RLock()
	defer s.ns.RUnlock()
	ino, ok := s.inodes[id]
	if !ok {
		return Attr{}, fmt.Errorf("%w: inode %d", ErrNotFound, id)
	}
	st := s.stripe(id)
	st.RLock()
	attr := ino.attr()
	st.RUnlock()
	return attr, nil
}

// ReadDir lists a directory.
func (s *Store) ReadDir(id FileID) ([]DirEnt, error) {
	s.ns.RLock()
	defer s.ns.RUnlock()
	ino, ok := s.inodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: inode %d", ErrNotFound, id)
	}
	if ino.typ != TypeDir {
		return nil, fmt.Errorf("%w: inode %d", ErrNotDir, id)
	}
	out := make([]DirEnt, 0, len(s.dirents[id]))
	for name, cid := range s.dirents[id] {
		child, local := s.inodes[cid]
		if !local {
			// Remote-homed child: type from the edge record, size unknown
			// here (callers that need it stat the home shard).
			out = append(out, DirEnt{Name: name, ID: cid, Type: s.remote[cid]})
			continue
		}
		st := s.stripe(cid)
		st.RLock()
		size := child.size
		st.RUnlock()
		out = append(out, DirEnt{Name: name, ID: cid, Type: child.typ, Size: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Remove unlinks name under parent, freeing the file's space.
func (s *Store) Remove(parent FileID, name string) error {
	s.ns.Lock()
	dir, ok := s.dirents[parent]
	if !ok {
		s.ns.Unlock()
		return fmt.Errorf("%w: parent %d", ErrNotFound, parent)
	}
	id, ok := dir[name]
	if !ok {
		s.ns.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	ino, local := s.inodes[id]
	if !local {
		// Remote-homed child: the inode (and, for a directory, its
		// emptiness) lives on its home shard — the client must use the
		// cross-shard remove protocol instead.
		s.ns.Unlock()
		return fmt.Errorf("%w: inode %d", ErrWrongShard, id)
	}
	if s.nsIntents.has(id) {
		s.ns.Unlock()
		return fmt.Errorf("%w: inode %d is under a namespace intent", ErrNSConflict, id)
	}
	if ino.typ == TypeDir && len(s.dirents[id]) > 0 {
		s.ns.Unlock()
		return fmt.Errorf("%w: %q", ErrNotEmpty, name)
	}
	freed := s.applyRemove(parent, name, id)
	wait := s.journalAppend(&Record{Type: RecRemove, File: id, Parent: parent, Name: name})
	s.ns.Unlock()
	for _, sp := range freed {
		_ = s.cfg.AGs.FreeSpan(sp)
	}
	return wait()
}

// applyRemove unlinks and returns the spans to free. Caller holds ns
// exclusively.
func (s *Store) applyRemove(parent FileID, name string, id FileID) []alloc.Span {
	ino := s.inodes[id]
	delete(s.dirents[parent], name)
	ino.nlink--
	if ino.nlink > 0 {
		return nil
	}
	return s.freeInode(id)
}

// ---------------------------------------------------------------------------
// Layouts and commits

// GetLayout returns the extents of file overlapping [off, off+n). By
// default only committed extents are visible — the ordered-write guarantee
// means uncommitted data may not exist yet. A lookup carrying
// LayoutWantUncommitted (early visibility, protocol v2) also returns
// published write intents, tagged StateUncommitted, and fills in the file's
// visible end from the intent table; the caller fetches their data directly
// from the devices, which by construction serve only durable (or stale)
// bytes.
func (s *Store) GetLayout(id FileID, off, n int64, flags LayoutFlags) (Layout, error) {
	s.ns.RLock()
	defer s.ns.RUnlock()
	ino, ok := s.inodes[id]
	if !ok {
		return Layout{}, fmt.Errorf("%w: inode %d", ErrNotFound, id)
	}
	if ino.typ != TypeFile {
		return Layout{}, fmt.Errorf("%w: inode %d", ErrIsDir, id)
	}
	wantUncommitted := flags.Has(LayoutWantUncommitted)
	st := s.stripe(id)
	st.RLock()
	lay := Layout{File: id, Extents: ino.extentsIn(off, n, !wantUncommitted)}
	st.RUnlock()
	if wantUncommitted {
		lay.VisibleEnd = s.intents.visibleEnd(id)
	}
	return lay, nil
}

// AllocLayout returns a layout covering [off, off+n) for writing, allocating
// space for any uncovered gap. New extents start uncommitted and are
// attributed to owner for orphan GC.
func (s *Store) AllocLayout(owner string, id FileID, off, n int64) (Layout, error) {
	s.ns.RLock()
	ino, ok := s.inodes[id]
	if !ok {
		s.ns.RUnlock()
		return Layout{}, fmt.Errorf("%w: inode %d", ErrNotFound, id)
	}
	if ino.typ != TypeFile {
		s.ns.RUnlock()
		return Layout{}, fmt.Errorf("%w: inode %d", ErrIsDir, id)
	}
	// Uncovered sub-ranges of [off, off+n).
	st := s.stripe(id)
	st.RLock()
	var used []ival
	for _, e := range ino.extents {
		used = addIval(used, e.FileOff, e.End())
	}
	st.RUnlock()
	s.ns.RUnlock()
	holes := gaps(off, off+n, used)

	// Allocate outside the locks (AGs have their own locks).
	var newExts []Extent
	for _, h := range holes {
		spans, err := s.cfg.AGs.AllocExtents(owner, h.end-h.off, s.cfg.MaxSpan)
		if err != nil {
			for _, e := range newExts {
				_ = s.cfg.AGs.FreeSpan(alloc.Span{Dev: int(e.Dev), Off: e.VolOff, Len: e.Len})
			}
			return Layout{}, err
		}
		fo := h.off
		for _, sp := range spans {
			newExts = append(newExts, Extent{FileOff: fo, Len: sp.Len, Dev: uint32(sp.Dev), VolOff: sp.Off, State: StateUncommitted})
			fo += sp.Len
		}
	}

	s.ns.RLock()
	ino, ok = s.inodes[id]
	if !ok {
		s.ns.RUnlock()
		for _, e := range newExts {
			_ = s.cfg.AGs.FreeSpan(alloc.Span{Dev: int(e.Dev), Off: e.VolOff, Len: e.Len})
		}
		return Layout{}, fmt.Errorf("%w: inode %d removed during allocation", ErrNotFound, id)
	}
	st.Lock()
	if err := s.applyAlloc(ino, owner, newExts); err != nil {
		st.Unlock()
		s.ns.RUnlock()
		for _, e := range newExts {
			_ = s.cfg.AGs.FreeSpan(alloc.Span{Dev: int(e.Dev), Off: e.VolOff, Len: e.Len})
		}
		return Layout{}, err
	}
	lay := Layout{File: id, Extents: ino.extentsIn(off, n, false)}
	var wait func() error
	if len(newExts) > 0 {
		wait = s.journalAppend(&Record{Type: RecAlloc, File: id, Owner: owner, Extents: newExts})
	} else {
		wait = func() error { return nil }
	}
	st.Unlock()
	s.ns.RUnlock()
	if err := wait(); err != nil {
		return Layout{}, err
	}
	return lay, nil
}

// applyAlloc publishes exts as owner's write intents and inserts them as
// uncommitted extents. Caller holds the inode's stripe lock or ns
// exclusively. Publication goes first: a conflicting intent (wrapped
// ErrIntentConflict) rejects the allocation before the inode is touched.
func (s *Store) applyAlloc(ino *inode, owner string, exts []Extent) error {
	if err := s.intents.publish(ino.id, owner, exts); err != nil {
		return err
	}
	for _, e := range exts {
		ino.extents = insertExtent(ino.extents, e)
	}
	return nil
}

// insertExtent inserts e keeping the list sorted by FileOff.
func insertExtent(list []Extent, e Extent) []Extent {
	i := sort.Search(len(list), func(i int) bool { return list[i].FileOff >= e.FileOff })
	list = append(list, Extent{})
	copy(list[i+1:], list[i:])
	list[i] = e
	return list
}

// Commit marks extents committed, updating size and mtime — the metadata
// half of an ordered write. Each extent must either match an uncommitted
// extent previously returned by AllocLayout, or lie inside one of owner's
// delegations (client-side allocation). Anything else is rejected: metadata
// must never point at space the MDS didn't account.
//
// Commits run under the shared namespace lock plus the file's stripe lock,
// so commits to different files proceed in parallel and their journal
// records coalesce in the group-commit batcher.
func (s *Store) Commit(owner string, id FileID, exts []Extent, size int64, mtime time.Time) error {
	return s.CommitTraced(owner, id, exts, size, mtime, 0)
}

// CommitTraced is Commit carrying the client-assigned commit ID for span
// correlation. The span timeline splits the call into lock wait (namespace +
// stripe acquisition), apply (mutation under the stripe lock, including the
// journal append handoff), and journal (the group-commit durability wait).
// All spans are recorded after the locks are dropped so tracing can never
// extend a lock hold.
func (s *Store) CommitTraced(owner string, id FileID, exts []Extent, size int64, mtime time.Time, commitID uint64) error {
	return s.CommitTracedCtx(owner, id, exts, size, mtime, commitID, obs.SpanContext{})
}

// CommitTracedCtx is CommitTraced carrying a propagated trace context: when
// tc is non-zero the three store spans link under tc.SpanID (the MDS commit
// handler span), stitching the store into the client's distributed trace.
func (s *Store) CommitTracedCtx(owner string, id FileID, exts []Extent, size int64, mtime time.Time, commitID uint64, tc obs.SpanContext) error {
	traced := s.cfg.Tracer.Enabled() && commitID != 0
	var lockStart, applyStart time.Time
	if traced {
		lockStart = s.clk.Now()
	}
	s.ns.RLock()
	ino, ok := s.inodes[id]
	if !ok {
		s.ns.RUnlock()
		return fmt.Errorf("%w: inode %d", ErrNotFound, id)
	}
	if ino.typ != TypeFile {
		s.ns.RUnlock()
		return fmt.Errorf("%w: inode %d", ErrIsDir, id)
	}
	st := s.stripe(id)
	st.Lock()
	if traced {
		applyStart = s.clk.Now()
	}
	if err := s.applyCommit(ino, owner, exts, size, mtime, true); err != nil {
		st.Unlock()
		s.ns.RUnlock()
		return err
	}
	rec := &Record{Type: RecCommit, File: id, Owner: owner, Size: size, MTime: mtime, Extents: exts}
	wait := s.journalAppend(rec)
	st.Unlock()
	s.ns.RUnlock()
	if !traced {
		return wait()
	}
	jStart := s.clk.Now()
	err := wait()
	end := s.clk.Now()
	s.cfg.Tracer.RecordSpan(obs.Span{Track: s.track, Name: obs.SpanMDSLockWait, CommitID: commitID,
		TraceID: tc.TraceID, SpanID: childSpan(tc, obs.SpanMDSLockWait), Parent: tc.SpanID,
		Start: lockStart, End: applyStart})
	s.cfg.Tracer.RecordSpan(obs.Span{Track: s.track, Name: obs.SpanMDSApply, CommitID: commitID,
		TraceID: tc.TraceID, SpanID: childSpan(tc, obs.SpanMDSApply), Parent: tc.SpanID,
		Start: applyStart, End: jStart})
	s.cfg.Tracer.RecordSpan(obs.Span{Track: s.track, Name: obs.SpanMDSJournal, CommitID: commitID,
		TraceID: tc.TraceID, SpanID: childSpan(tc, obs.SpanMDSJournal), Parent: tc.SpanID,
		Start: jStart, End: end})
	return err
}

// childSpan derives the span id of one store-side child, or 0 when the
// request carried no trace context (untraced spans stay unlinked).
func childSpan(tc obs.SpanContext, name string) uint64 {
	if tc.SpanID == 0 {
		return 0
	}
	return obs.NewSpanID(tc.SpanID, name)
}

// applyCommit flips or inserts committed extents. Caller holds the inode's
// stripe lock (runtime) or ns exclusively (replay). When strict is set,
// unknown extents outside delegations are rejected (runtime behaviour);
// replay runs non-strict only for records already validated.
func (s *Store) applyCommit(ino *inode, owner string, exts []Extent, size int64, mtime time.Time, strict bool) error {
	// Validate first, then mutate, so a rejected commit changes nothing.
	type action struct {
		idx int // >= 0: flip existing extent
		ext Extent
		d   *delegation
	}
	var acts []action
	for _, e := range exts {
		idx := -1
		for i, have := range ino.extents {
			if have.VolOff == e.VolOff && have.Dev == e.Dev && have.FileOff == e.FileOff && have.Len == e.Len {
				idx = i
				break
			}
		}
		if idx >= 0 {
			acts = append(acts, action{idx: idx, ext: e})
			continue
		}
		d := s.findDelegation(owner, e)
		if d == nil && strict {
			return fmt.Errorf("%w: extent dev%d[%d+%d) of file %d", ErrBadCommit, e.Dev, e.VolOff, e.Len, ino.id)
		}
		// Overlap with a different existing extent is a client bug.
		for _, have := range ino.extents {
			if e.FileOff < have.End() && have.FileOff < e.FileOff+e.Len {
				return fmt.Errorf("%w: extent overlaps existing file range [%d+%d)", ErrBadCommit, have.FileOff, have.Len)
			}
		}
		acts = append(acts, action{idx: -1, ext: e, d: d})
	}
	for _, a := range acts {
		if a.idx >= 0 {
			ino.extents[a.idx].State = StateCommitted
			s.intents.graduate(ino.id, a.ext)
		} else {
			e := a.ext
			e.State = StateCommitted
			ino.extents = insertExtent(ino.extents, e)
		}
		if d := s.findDelegation(owner, a.ext); d != nil {
			d.mu.Lock()
			d.used = addIval(d.used, a.ext.VolOff, a.ext.VolOff+a.ext.Len)
			d.mu.Unlock()
		}
	}
	if size > ino.size {
		ino.size = size
	}
	if mtime.After(ino.mtime) {
		ino.mtime = mtime
	}
	return nil
}

// findDelegation returns owner's delegation containing extent e, if any.
// Caller holds ns (shared or exclusive); span is immutable after grant.
func (s *Store) findDelegation(owner string, e Extent) *delegation {
	for _, d := range s.delegations[owner] {
		if d.span.Dev == int(e.Dev) && e.VolOff >= d.span.Off && e.VolOff+e.Len <= d.span.End() {
			return d
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Space delegation

// Delegate grants owner a contiguous chunk of physical space for local
// small-file allocation (§IV-A).
func (s *Store) Delegate(owner string, size int64) (alloc.Span, error) {
	sp, err := s.cfg.AGs.Alloc(owner, size)
	if err != nil {
		return alloc.Span{}, err
	}
	s.ns.Lock()
	s.delegations[owner] = append(s.delegations[owner], &delegation{owner: owner, span: sp})
	wait := s.journalAppend(&Record{Type: RecDelegate, Owner: owner, SpanDev: uint32(sp.Dev), SpanOff: sp.Off, SpanLen: sp.Len})
	s.ns.Unlock()
	if err := wait(); err != nil {
		return alloc.Span{}, err
	}
	return sp, nil
}

// ReturnDelegation gives back a delegation; sub-ranges never committed are
// freed.
func (s *Store) ReturnDelegation(owner string, sp alloc.Span) error {
	s.ns.Lock()
	ds := s.delegations[owner]
	idx := -1
	for i, d := range ds {
		if d.span == sp {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.ns.Unlock()
		return fmt.Errorf("%w: %s %v", ErrNoDelegation, owner, sp)
	}
	d := ds[idx]
	s.delegations[owner] = append(ds[:idx], ds[idx+1:]...)
	holes := gaps(d.span.Off, d.span.End(), d.used)
	wait := s.journalAppend(&Record{Type: RecDelegReturn, Owner: owner, SpanDev: uint32(sp.Dev), SpanOff: sp.Off, SpanLen: sp.Len})
	s.ns.Unlock()
	for _, h := range holes {
		_ = s.cfg.AGs.FreeSpan(alloc.Span{Dev: sp.Dev, Off: h.off, Len: h.end - h.off})
	}
	return wait()
}

// ClientGone revokes everything owner holds: delegations (their never-
// committed sub-ranges are freed) and uncommitted layout-get extents (orphan
// space, removed from files and freed). This is the paper's orphan garbage
// collection, triggered by lease expiry or recovery.
func (s *Store) ClientGone(owner string) (orphanBytes int64) {
	s.ns.Lock()
	freed := s.applyClientGone(owner)
	wait := s.journalAppend(&Record{Type: RecClientGone, Owner: owner})
	s.ns.Unlock()
	for _, sp := range freed {
		orphanBytes += sp.Len
		_ = s.cfg.AGs.FreeSpan(sp)
	}
	_ = wait()
	return orphanBytes
}

// applyClientGone collects the spans to free. Caller holds ns exclusively.
// Rolling back the owner's write intents removes their uncommitted extents
// from the affected files, so readers that saw them under early visibility
// simply stop seeing them — the bytes they may have fetched were durable
// (the device never serves anything else), just never committed.
func (s *Store) applyClientGone(owner string) []alloc.Span {
	var freed []alloc.Span
	for _, d := range s.delegations[owner] {
		for _, h := range gaps(d.span.Off, d.span.End(), d.used) {
			freed = append(freed, alloc.Span{Dev: d.span.Dev, Off: h.off, Len: h.end - h.off})
		}
	}
	delete(s.delegations, owner)
	for fid, exts := range s.intents.rollbackOwner(owner) {
		ino, ok := s.inodes[fid]
		if !ok {
			continue
		}
		kept := ino.extents[:0]
		for _, e := range ino.extents {
			dropped := false
			if e.State == StateUncommitted {
				for _, re := range exts {
					if sameExtent(re, e) {
						dropped = true
						break
					}
				}
			}
			if dropped {
				freed = append(freed, alloc.Span{Dev: int(e.Dev), Off: e.VolOff, Len: e.Len})
				continue
			}
			kept = append(kept, e)
		}
		ino.extents = kept
	}
	return freed
}

// Delegations returns the number of live delegations for owner (tests).
func (s *Store) Delegations(owner string) int {
	s.ns.RLock()
	defer s.ns.RUnlock()
	return len(s.delegations[owner])
}

// ---------------------------------------------------------------------------
// Recovery

// RecoveryStats summarizes a journal replay.
type RecoveryStats struct {
	Records     int
	Files       int
	OrphanBytes int64 // space reclaimed from uncommitted allocations
	Delegations int   // delegations revoked during GC
	Torn        bool  // replay ended at a torn (partially written) record
}

// Recover rebuilds a store from cfg.Journal, then garbage-collects orphan
// space: every client is presumed gone after a crash, so all uncommitted
// allocations and all never-committed delegation sub-ranges return to the
// free pool. The AG set in cfg must be fresh (fully free).
func Recover(cfg Config) (*Store, RecoveryStats, error) {
	if cfg.Journal == nil {
		return nil, RecoveryStats{}, ErrNoJournal
	}
	j := cfg.Journal
	cfgNoJournal := cfg
	cfgNoJournal.Journal = nil // replay must not re-journal
	s := NewStore(cfgNoJournal)

	var st RecoveryStats
	torn, err := j.Replay(func(rec *Record) error {
		st.Records++
		return s.applyRecord(rec)
	})
	if err != nil {
		return nil, st, err
	}
	st.Torn = torn

	// GC pass: all owners are gone.
	s.ns.Lock()
	owners := make([]string, 0, len(s.delegations))
	for o := range s.delegations {
		owners = append(owners, o)
		st.Delegations += len(s.delegations[o])
	}
	ownerSet := map[string]bool{}
	for _, o := range owners {
		ownerSet[o] = true
	}
	for _, o := range s.intents.owners() {
		ownerSet[o] = true
	}
	s.ns.Unlock()

	s.SetJournal(cfg.Journal) // journal GC records and future mutations
	for o := range ownerSet {
		st.OrphanBytes += s.ClientGone(o)
	}
	st.Files = s.FileCount()
	return s, st, nil
}

// applyRecord replays one journal record. Caller does NOT hold any store
// lock; replay takes ns exclusively per record.
func (s *Store) applyRecord(rec *Record) error {
	s.ns.Lock()
	defer s.ns.Unlock()
	switch rec.Type {
	case RecCreate:
		if _, ok := s.dirents[rec.Parent]; !ok {
			return fmt.Errorf("%w: replay create under missing dir %d", ErrNotFound, rec.Parent)
		}
		s.applyCreate(rec.File, rec.Parent, rec.Name, rec.FType, rec.MTime)
	case RecRemove:
		if dir, ok := s.dirents[rec.Parent]; ok {
			if id, ok := dir[rec.Name]; ok {
				freed := s.applyRemove(rec.Parent, rec.Name, id)
				for _, sp := range freed {
					_ = s.cfg.AGs.FreeSpan(sp)
				}
			}
		}
	case RecAlloc:
		ino, ok := s.inodes[rec.File]
		if !ok {
			return fmt.Errorf("%w: replay alloc for missing file %d", ErrNotFound, rec.File)
		}
		for _, e := range rec.Extents {
			if err := s.cfg.AGs.ReserveSpan(alloc.Span{Dev: int(e.Dev), Off: e.VolOff, Len: e.Len}); err != nil {
				return err
			}
		}
		return s.applyAlloc(ino, rec.Owner, rec.Extents)
	case RecCommit:
		ino, ok := s.inodes[rec.File]
		if !ok {
			// The file was later removed; nothing to do.
			return nil
		}
		// Delegation-carved extents were never individually reserved;
		// their space is covered by the RecDelegate reservation.
		return s.applyCommit(ino, rec.Owner, rec.Extents, rec.Size, rec.MTime, false)
	case RecDelegate:
		sp := alloc.Span{Dev: int(rec.SpanDev), Off: rec.SpanOff, Len: rec.SpanLen}
		if err := s.cfg.AGs.ReserveSpan(sp); err != nil {
			return err
		}
		s.delegations[rec.Owner] = append(s.delegations[rec.Owner], &delegation{owner: rec.Owner, span: sp})
	case RecDelegReturn:
		sp := alloc.Span{Dev: int(rec.SpanDev), Off: rec.SpanOff, Len: rec.SpanLen}
		ds := s.delegations[rec.Owner]
		for i, d := range ds {
			if d.span == sp {
				s.delegations[rec.Owner] = append(ds[:i], ds[i+1:]...)
				for _, h := range gaps(sp.Off, sp.End(), d.used) {
					_ = s.cfg.AGs.FreeSpan(alloc.Span{Dev: sp.Dev, Off: h.off, Len: h.end - h.off})
				}
				break
			}
		}
	case RecClientGone:
		freed := s.applyClientGone(rec.Owner)
		for _, sp := range freed {
			_ = s.cfg.AGs.FreeSpan(sp)
		}
	case RecRename:
		if dir, ok := s.dirents[rec.Parent]; ok {
			if id, ok := dir[rec.Name]; ok && id == rec.File {
				if _, ok := s.dirents[rec.DstParent]; ok {
					s.applyRename(rec.Parent, rec.Name, rec.DstParent, rec.DstName, rec.File)
				}
			}
		}
	case RecNSIntent:
		in := NSIntent{
			File: rec.File, Kind: rec.NSKind, Type: rec.FType,
			Parent: rec.Parent, Name: rec.Name,
			DstParent: rec.DstParent, DstName: rec.DstName,
		}
		if _, err := s.nsIntents.publish(in); err != nil {
			return err
		}
		if rec.NSKind == NSCreate {
			s.applyCreateDetached(rec.File, rec.FType, rec.MTime)
		}
	case RecNSCommit:
		if in, ok := s.nsIntents.get(rec.File); ok && in.Kind == rec.NSKind {
			for _, sp := range s.applyNSCommit(in) {
				_ = s.cfg.AGs.FreeSpan(sp)
			}
		}
	case RecNSAbort:
		if in, ok := s.nsIntents.get(rec.File); ok && in.Kind == rec.NSKind {
			for _, sp := range s.applyNSAbort(in) {
				_ = s.cfg.AGs.FreeSpan(sp)
			}
		}
	case RecLinkRemote:
		// The commit-point marker is rebuilt even when the dirent apply is
		// moot (snapshot edge markers carry no parent; a later rename may
		// have moved the entry) — a post-recovery retry must still see it.
		s.linkDone[rec.File] = struct{}{}
		if _, ok := s.dirents[rec.Parent]; ok {
			s.applyLink(rec.Parent, rec.Name, rec.File, rec.FType)
		}
	case RecUnlinkRemote:
		s.unlinkDone[rec.File] = struct{}{}
		if dir, ok := s.dirents[rec.Parent]; ok {
			if id, ok := dir[rec.Name]; ok && id == rec.File {
				s.applyUnlink(rec.Parent, rec.Name)
			}
		}
	default:
		return fmt.Errorf("%w: unknown record type %d", ErrJournalCorrupt, rec.Type)
	}
	return nil
}

// FileCount returns the number of inodes excluding the root.
func (s *Store) FileCount() int {
	s.ns.RLock()
	defer s.ns.RUnlock()
	n := len(s.inodes)
	if _, ok := s.inodes[RootID]; ok {
		n--
	}
	return n
}

// CheckConsistent verifies the global invariant behind ordered writes, via
// the supplied durability oracle (usually blockdev.Device.IsDurable): every
// committed extent's data must be durable. It returns the violations found.
func (s *Store) CheckConsistent(durable func(dev int, off, n int64) bool) []Extent {
	s.ns.Lock()
	defer s.ns.Unlock()
	var bad []Extent
	for _, ino := range s.inodes {
		for _, e := range ino.extents {
			if e.State == StateCommitted && !durable(int(e.Dev), e.VolOff, e.Len) {
				bad = append(bad, e)
			}
		}
	}
	return bad
}
