package netsim

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"redbud/internal/clock"
	"redbud/internal/stats"
)

// This file implements deterministic fault injection for the simulated
// fabric. A FaultPlan describes, per directed link, the probability of a
// frame being dropped, duplicated, delayed, or reordered, plus timed
// partitions. All randomness comes from per-link generators seeded from the
// plan seed, and all time comes from the fabric's clock, so a given
// (seed, plan, workload) triple replays the same fault schedule.

// LinkFaults is the probabilistic fault mix applied to frames on one
// directed link. The zero value injects nothing.
type LinkFaults struct {
	// DropProb is the probability a frame is silently discarded.
	DropProb float64
	// DupProb is the probability a frame is delivered twice.
	DupProb float64
	// DelayProb is the probability a frame is held for DelaySpike of
	// virtual time before delivery (on top of normal link latency).
	DelayProb  float64
	DelaySpike time.Duration
	// ReorderProb is the probability a frame is held back and delivered
	// after the link's next frame, swapping the pair. A held frame is
	// force-flushed after ReorderHold (default 1ms) so a quiet link cannot
	// turn a reorder into an unbounded stall.
	ReorderProb float64
	ReorderHold time.Duration
}

// Partition cuts every link whose source matches From and destination
// matches To ("*" matches any host) during [Start, End), measured in virtual
// time from the moment the plan was installed. Frames inside the window are
// dropped at the sender.
type Partition struct {
	From, To   string
	Start, End time.Duration
}

// Decision is the fate the injector assigns to a single frame.
type Decision struct {
	// Drop discards the frame.
	Drop bool
	// Dup delivers the frame twice.
	Dup bool
	// Delay holds the frame for this long before delivery.
	Delay time.Duration
	// Hold parks the frame until the link's next frame has been delivered
	// (reordering the pair), or until HoldFor elapses, whichever is first.
	Hold    bool
	HoldFor time.Duration
}

// FaultPlan is the cluster-wide fault schedule installed on a Network.
type FaultPlan struct {
	// Seed derives every per-link random stream.
	Seed int64
	// Default applies to every directed link without an entry in Links.
	Default LinkFaults
	// Links overrides Default, keyed by destination host name.
	Links map[string]LinkFaults
	// Partitions lists timed link cuts.
	Partitions []Partition
	// Script, when non-nil, is consulted first for every frame; returning a
	// non-nil Decision bypasses the probabilistic plan entirely. Tests use
	// it to aim a single fault at an exact protocol step.
	Script func(from, to string, n int) *Decision
}

// FaultStats counts injected faults since the plan was installed.
type FaultStats struct {
	Dropped     int64
	Duplicated  int64
	Delayed     int64
	Reordered   int64
	Partitioned int64
}

// injector evaluates one installed FaultPlan.
type injector struct {
	plan FaultPlan
	clk  clock.Clock
	t0   time.Time

	mu   sync.Mutex
	rngs map[string]*rand.Rand // one stream per directed link

	dropped     stats.Counter
	duplicated  stats.Counter
	delayed     stats.Counter
	reordered   stats.Counter
	partitioned stats.Counter
}

// InstallFaults activates plan on every simulated link of the fabric,
// replacing any previous plan. Partition windows are measured from now.
func (n *Network) InstallFaults(plan FaultPlan) {
	n.inj.Store(&injector{
		plan: plan,
		clk:  n.clk,
		t0:   n.clk.Now(),
		rngs: make(map[string]*rand.Rand),
	})
}

// ClearFaults removes the installed fault plan.
func (n *Network) ClearFaults() { n.inj.Store(nil) }

// FaultStats snapshots the injected-fault counters of the active plan.
func (n *Network) FaultStats() FaultStats {
	inj := n.inj.Load()
	if inj == nil {
		return FaultStats{}
	}
	return FaultStats{
		Dropped:     inj.dropped.Load(),
		Duplicated:  inj.duplicated.Load(),
		Delayed:     inj.delayed.Load(),
		Reordered:   inj.reordered.Load(),
		Partitioned: inj.partitioned.Load(),
	}
}

// decide assigns a fate to one n-byte frame traveling from -> to.
func (inj *injector) decide(from, to string, n int) Decision {
	if s := inj.plan.Script; s != nil {
		if d := s(from, to, n); d != nil {
			inj.count(*d)
			return *d
		}
	}
	if inj.inPartition(from, to) {
		inj.partitioned.Inc()
		return Decision{Drop: true}
	}
	lf, ok := inj.plan.Links[to]
	if !ok {
		lf = inj.plan.Default
	}
	if lf == (LinkFaults{}) {
		return Decision{}
	}
	// Always burn the same number of draws per frame so one link's fault
	// probabilities do not shift another fault type's stream.
	inj.mu.Lock()
	rng := inj.linkRNG(from, to)
	pDrop, pDup, pDelay, pReorder := rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()
	inj.mu.Unlock()

	var d Decision
	switch {
	case pDrop < lf.DropProb:
		d.Drop = true
	case pReorder < lf.ReorderProb:
		d.Hold = true
		d.HoldFor = lf.ReorderHold
		if d.HoldFor <= 0 {
			d.HoldFor = time.Millisecond
		}
	default:
		if pDup < lf.DupProb {
			d.Dup = true
		}
	}
	if !d.Drop && pDelay < lf.DelayProb {
		d.Delay = lf.DelaySpike
	}
	inj.count(d)
	return d
}

func (inj *injector) count(d Decision) {
	if d.Drop {
		inj.dropped.Inc()
	}
	if d.Dup {
		inj.duplicated.Inc()
	}
	if d.Delay > 0 {
		inj.delayed.Inc()
	}
	if d.Hold {
		inj.reordered.Inc()
	}
}

// linkRNG returns the directed link's generator; callers hold inj.mu.
func (inj *injector) linkRNG(from, to string) *rand.Rand {
	key := from + ">" + to
	rng := inj.rngs[key]
	if rng == nil {
		h := fnv.New64a()
		h.Write([]byte(key))
		rng = rand.New(rand.NewSource(inj.plan.Seed ^ int64(h.Sum64())))
		inj.rngs[key] = rng
	}
	return rng
}

// inPartition reports whether from -> to is inside an active partition
// window.
func (inj *injector) inPartition(from, to string) bool {
	if len(inj.plan.Partitions) == 0 {
		return false
	}
	el := inj.clk.Since(inj.t0)
	for _, p := range inj.plan.Partitions {
		if el >= p.Start && el < p.End && hostMatch(p.From, from) && hostMatch(p.To, to) {
			return true
		}
	}
	return false
}

func hostMatch(pat, host string) bool { return pat == "*" || pat == host }
