package workload

import (
	"fmt"
	"sync"

	"redbud/internal/clock"
	"redbud/internal/fsapi"
)

// BTSpec parameterizes the NPB BT-IO-like benchmark: R ranks — spread over
// the cluster's client mounts — write interleaved blocks of one shared file
// over several steps, then the file is read back and verified. The
// read-back hits data whose commits may still be in flight — the paper's
// "conflict operations" (§V-C).
type BTSpec struct {
	Ranks     int
	Steps     int
	BlockSize int64 // one rank's block per step
	Seed      int64
}

// DefaultBT matches the scale used by the harness.
func DefaultBT(seed int64) BTSpec {
	return BTSpec{Ranks: 4, Steps: 48, BlockSize: 64 << 10, Seed: seed}
}

// FileSize returns the total bytes written.
func (s BTSpec) FileSize() int64 {
	return int64(s.Ranks) * int64(s.Steps) * s.BlockSize
}

// blockOff returns the file offset of rank r's block in step st: blocks are
// interleaved rank-major within each step, as BT's diagonal decomposition
// produces.
func (s BTSpec) blockOff(st, r int) int64 {
	return (int64(st)*int64(s.Ranks) + int64(r)) * s.BlockSize
}

// marker gives each block a verifiable content byte.
func (s BTSpec) marker(st, r int) byte {
	return byte(st*31 + r*7 + int(s.Seed) + 1)
}

// drainer lets the benchmark flush pending delayed commits before the
// verification read — the MPI_File_sync equivalent at the end of the write
// phase. Redbud clients implement it.
type drainer interface{ Drain() error }

// RunBT runs the benchmark with rank r mounted on fss[r%len(fss)]. The
// result's BytesRead covers the verification pass.
func RunBT(fss []fsapi.FileSystem, clk clock.Clock, spec BTSpec) (Result, error) {
	if clk == nil {
		clk = clock.Real(1)
	}
	if len(fss) == 0 {
		return Result{}, fmt.Errorf("workload: BT needs at least one mount")
	}
	if spec.Ranks <= 0 || spec.Steps <= 0 || spec.BlockSize <= 0 {
		return Result{}, fmt.Errorf("workload: bad BT spec %+v", spec)
	}
	if err := fss[0].Mkdir("/npb"); err != nil {
		return Result{}, err
	}
	const path = "/npb/btio.out"
	f0, err := fss[0].Create(path)
	if err != nil {
		return Result{}, err
	}

	// Each rank opens its own handle on its mount.
	handles := make([]fsapi.File, spec.Ranks)
	handles[0] = f0
	for r := 1; r < spec.Ranks; r++ {
		if fss[r%len(fss)] == fss[0] {
			handles[r] = f0
			continue
		}
		h, err := fss[r%len(fss)].Open(path)
		if err != nil {
			return Result{}, err
		}
		handles[r] = h
	}

	start := clk.Now()
	var ops int64

	if cw, ok := f0.(fsapi.CollectiveWriter); ok {
		// Two-phase collective I/O: the ranks' blocks of each step are
		// aggregated and issued as one collective write.
		for st := 0; st < spec.Steps; st++ {
			blocks := make([]fsapi.CollectiveBlock, 0, spec.Ranks)
			for r := 0; r < spec.Ranks; r++ {
				blocks = append(blocks, fsapi.CollectiveBlock{
					Off:  spec.blockOff(st, r),
					Data: fill(spec.BlockSize, spec.marker(st, r)),
				})
			}
			if err := cw.WriteCollective(blocks); err != nil {
				return Result{}, err
			}
			ops++
		}
	} else {
		// Independent I/O: every rank writes its own blocks.
		for st := 0; st < spec.Steps; st++ {
			var wg sync.WaitGroup
			errs := make(chan error, spec.Ranks)
			for r := 0; r < spec.Ranks; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					data := fill(spec.BlockSize, spec.marker(st, r))
					_, err := handles[r].WriteAt(data, spec.blockOff(st, r))
					errs <- err
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					return Result{}, err
				}
			}
			ops += int64(spec.Ranks)
		}
	}

	// End of write phase: close rank handles and drain pending commits
	// (MPI barrier + file sync before verification).
	closed := map[fsapi.File]bool{}
	for _, h := range handles {
		if !closed[h] {
			closed[h] = true
			if err := h.Close(); err != nil {
				return Result{}, err
			}
		}
	}
	for _, fs := range fss {
		if d, ok := fs.(drainer); ok {
			if err := d.Drain(); err != nil {
				return Result{}, err
			}
		}
	}

	// Verification read-back: "written data is read out into memory to
	// verify the correctness at the end of the program" (§V-C).
	vf, err := fss[0].Open(path)
	if err != nil {
		return Result{}, err
	}
	defer vf.Close()
	total := spec.FileSize()
	buf := make([]byte, total)
	n, err := vf.ReadAt(buf, 0)
	if err != nil {
		return Result{}, err
	}
	if int64(n) != total {
		return Result{}, fmt.Errorf("workload: BT read back %d of %d bytes", n, total)
	}
	for st := 0; st < spec.Steps; st++ {
		for r := 0; r < spec.Ranks; r++ {
			off := spec.blockOff(st, r)
			want := spec.marker(st, r)
			blk := buf[off : off+spec.BlockSize]
			// Spot-check the fill pattern at both ends.
			if blk[0] != want || blk[spec.BlockSize-1] != byte(spec.BlockSize-1)*13+want {
				return Result{}, fmt.Errorf("workload: BT verify failed at step %d rank %d", st, r)
			}
		}
	}
	dur := clk.Since(start)
	return Result{
		Name:         "npb-bt",
		Duration:     dur,
		Ops:          ops,
		BytesWritten: total,
		BytesRead:    total,
	}, nil
}
