// Package san exports a simulated block device over the network, standing in
// for the paper's fiber-channel fabric in the real (multi-process, TCP)
// deployment: cmd/redbud-disk serves devices, and clients mount them as
// client.BlockDevice via RemoteDevice. The in-process simulation bypasses
// this and attaches devices directly.
package san

import (
	"fmt"

	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/netsim"
	"redbud/internal/rpc"
	"redbud/internal/wire"
)

// Operation codes.
const (
	opWrite uint16 = iota + 1
	opRead
)

type writeReq struct {
	Off  int64
	Data []byte
}

func (m *writeReq) MarshalWire(b *wire.Buffer) {
	b.PutI64(m.Off)
	b.PutBytes(m.Data)
}

func (m *writeReq) UnmarshalWire(r *wire.Reader) error {
	m.Off = r.I64()
	// Zero-copy: decoded server-side only, and the handler hands Data to
	// blockdev.Device.Write, which copies it into the device queue before
	// returning — the slice never outlives the pooled request frame.
	m.Data = r.BytesRef() //lint:allow wirealias — dev.Write copies before the handler returns
	return r.Err()
}

type readReq struct {
	Off int64
	N   int64
}

func (m *readReq) MarshalWire(b *wire.Buffer) {
	b.PutI64(m.Off)
	b.PutI64(m.N)
}

func (m *readReq) UnmarshalWire(r *wire.Reader) error {
	m.Off = r.I64()
	m.N = r.I64()
	return r.Err()
}

type dataResp struct{ Data []byte }

func (m *dataResp) MarshalWire(b *wire.Buffer) { b.PutBytes(m.Data) }

// UnmarshalWire must copy: dataResp is decoded client-side and Data escapes
// to the caller (RemoteDevice.Read returns it) while rpc.Client recycles the
// response frame immediately after wire.Decode.
func (m *dataResp) UnmarshalWire(r *wire.Reader) error { m.Data = r.Bytes(); return r.Err() }

// Server exports one device.
type Server struct {
	dev *blockdev.Device
	rpc *rpc.Server
}

// NewServer wraps dev with an RPC daemon pool.
func NewServer(dev *blockdev.Device, clk clock.Clock, daemons int) *Server {
	if dev == nil {
		panic("san: nil device")
	}
	if daemons <= 0 {
		daemons = 16
	}
	s := &Server{dev: dev}
	s.rpc = rpc.NewServer(rpc.ServerConfig{Handler: s.handle, Daemons: daemons, Clock: clk})
	return s
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l *netsim.Listener) { s.rpc.Serve(l) }

// ServeConn serves one connection.
func (s *Server) ServeConn(c netsim.Conn) { s.rpc.ServeConn(c) }

// Close stops the daemon pool.
func (s *Server) Close() { s.rpc.Close() }

func (s *Server) handle(op uint16, body []byte) ([]byte, error) {
	switch op {
	case opWrite:
		var req writeReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, s.dev.Write(req.Off, req.Data)
	case opRead:
		var req readReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		data, err := s.dev.Read(req.Off, req.N)
		if err != nil {
			return nil, err
		}
		return wire.Encode(&dataResp{Data: data}), nil
	}
	return nil, fmt.Errorf("san: unknown op %d", op)
}

// RemoteDevice is a network-attached block device implementing
// client.BlockDevice.
type RemoteDevice struct {
	rpcc *rpc.Client
}

// NewRemoteDevice wraps an established connection to a san.Server.
func NewRemoteDevice(conn netsim.Conn, clk clock.Clock) *RemoteDevice {
	return &RemoteDevice{rpcc: rpc.NewClient(conn, clk)}
}

// WriteAsync submits the write over the network; the channel yields when the
// remote device reports durability.
func (d *RemoteDevice) WriteAsync(off int64, p []byte) <-chan error {
	data := make([]byte, len(p))
	copy(data, p)
	done := make(chan error, 1)
	go func() {
		done <- d.rpcc.Call(opWrite, &writeReq{Off: off, Data: data}, nil)
	}()
	return done
}

// Write blocks until the remote write is durable.
func (d *RemoteDevice) Write(off int64, p []byte) error { return <-d.WriteAsync(off, p) }

// Read fetches n bytes at off.
func (d *RemoteDevice) Read(off, n int64) ([]byte, error) {
	var resp dataResp
	if err := d.rpcc.Call(opRead, &readReq{Off: off, N: n}, &resp); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Close tears down the connection.
func (d *RemoteDevice) Close() error { return d.rpcc.Close() }
