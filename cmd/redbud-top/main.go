// Command redbud-top is a live cluster monitor: it polls the /metrics.json
// endpoint of one or more debug HTTP servers (started with `redbud-mds
// -debug` / `redbud-client -debug`) and renders a refreshing terminal view —
// commit-queue depth, commit threads, compound degree, commit-latency
// p50/p99, and per-second rates computed from counter deltas between polls.
//
// With -cluster it additionally polls one daemon's /cluster/metrics.json —
// the daemon carrying the aggregation collector — and renders the cluster
// panel first: SLO alert states (firing rules up top), one column per shard
// with its commit p99, queue depth, and RPC rate, and the merge health.
//
//	redbud-mds  -listen :9000 -debug :9100 &
//	redbud-mds  -listen :9001 -debug :9101 -peers :9100,:9101 &
//	redbud-client -mds :9000 -disk 0=:9001 -debug :9102 bench 5000 &
//	redbud-top -cluster :9101 :9100 :9101 :9102
//
// Flags:
//
//	-interval 1s   poll period
//	-n 0           number of refreshes (0 = until interrupted)
//	-plain         no ANSI clear between refreshes (log-friendly)
//	-cluster ADDR  debug address serving /cluster/metrics.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"redbud/internal/obs"
	"redbud/internal/obs/agg"
)

// target is one polled debug endpoint.
type target struct {
	addr string
	prev obs.Snapshot
	ok   bool
}

// clusterTarget is the endpoint carrying the aggregation collector; prev
// keeps each shard's last snapshot so the panel can show interval rates.
type clusterTarget struct {
	addr string
	prev map[string]obs.Snapshot
	ok   bool
}

func main() {
	var (
		interval = flag.Duration("interval", time.Second, "poll period")
		count    = flag.Int("n", 0, "refreshes before exiting (0 = forever)")
		plain    = flag.Bool("plain", false, "do not clear the screen between refreshes")
		cluster  = flag.String("cluster", "", "debug address serving /cluster/metrics.json (renders the cluster panel)")
	)
	flag.Parse()
	if flag.NArg() == 0 && *cluster == "" {
		fmt.Fprintln(os.Stderr, "usage: redbud-top [flags] ADDR [ADDR...]  (debug HTTP addresses, e.g. :9100)")
		os.Exit(2)
	}

	targets := make([]*target, 0, flag.NArg())
	for _, a := range flag.Args() {
		targets = append(targets, &target{addr: a})
	}
	var ct *clusterTarget
	if *cluster != "" {
		ct = &clusterTarget{addr: *cluster, prev: map[string]obs.Snapshot{}}
	}
	httpc := &http.Client{Timeout: 2 * time.Second}

	for i := 0; *count == 0 || i < *count; i++ {
		var b strings.Builder
		fmt.Fprintf(&b, "redbud-top  %s  (%s refresh)\n\n", time.Now().Format("15:04:05"), *interval)
		if ct != nil {
			renderCluster(&b, httpc, ct, *interval)
		}
		for _, t := range targets {
			render(&b, httpc, t, *interval)
		}
		if !*plain {
			fmt.Print("\x1b[H\x1b[2J") // home + clear
		}
		os.Stdout.WriteString(b.String())
		if *count == 0 || i < *count-1 {
			time.Sleep(*interval)
		}
	}
}

// clusterSnap mirrors debughttp's /cluster/metrics.json payload: a collection
// round plus the SLO engine's view of it.
type clusterSnap struct {
	agg.ClusterSnapshot
	Alerts []agg.Alert `json:"alerts"`
	Events []agg.Event `json:"events"`
}

// renderCluster polls the collector endpoint and appends the cluster panel:
// alert states, then one column per shard.
func renderCluster(b *strings.Builder, httpc *http.Client, t *clusterTarget, interval time.Duration) {
	head := "cluster " + t.addr
	fmt.Fprintf(b, "── %s ", head)
	fmt.Fprintln(b, strings.Repeat("─", max(0, 60-len(head))))
	cs, err := pollCluster(httpc, t.addr)
	if err != nil {
		fmt.Fprintf(b, "  unreachable: %v\n\n", err)
		t.ok = false
		return
	}

	// Alerts first: a firing rule is the one line the operator must see.
	var hot []string
	for _, a := range cs.Alerts {
		if a.State != agg.StateInactive {
			hot = append(hot, fmt.Sprintf("%s %s (%.4g %s %g)",
				a.Rule.Name, strings.ToUpper(a.State.String()), a.Value, a.Rule.Op, a.Rule.Threshold))
		}
	}
	switch {
	case len(hot) > 0:
		fmt.Fprintf(b, "  ALERTS: %s\n", strings.Join(hot, "; "))
	case len(cs.Alerts) > 0:
		fmt.Fprintf(b, "  alerts: %d rules, all inactive\n", len(cs.Alerts))
	}
	if cs.Dropped > 0 {
		fmt.Fprintf(b, "  merge dropped %d series (histogram layout skew across shards)\n", cs.Dropped)
	}

	// Per-shard columns over the interval diff (gauges pass through, counter
	// and histogram readings become interval deltas).
	first := !t.ok
	diffs := make([]obs.Snapshot, len(cs.Shards))
	for i, sh := range cs.Shards {
		diffs[i] = obs.Diff(t.prev[sh.Shard], sh.Metrics)
		t.prev[sh.Shard] = sh.Metrics
	}
	t.ok = true
	fmt.Fprintf(b, "  %-16s", "shard")
	for _, sh := range cs.Shards {
		name := sh.Shard
		if sh.Err != "" {
			name += "!" // scrape failed this round
		}
		fmt.Fprintf(b, " %12s", name)
	}
	b.WriteByte('\n')
	row := func(label string, cell func(i int) string) {
		fmt.Fprintf(b, "  %-16s", label)
		for i := range cs.Shards {
			fmt.Fprintf(b, " %12s", cell(i))
		}
		b.WriteByte('\n')
	}
	row("commit p99", func(i int) string {
		if p99, ok := histP99(diffs[i], "redbud_mds_commit_latency_seconds", "redbud_client_commit_latency_seconds"); ok {
			return fmtSec(p99)
		}
		return "-"
	})
	row("queue len", func(i int) string {
		if v, ok := sumVal(diffs[i], obs.KindGauge, "redbud_rpc_queue_len", "redbud_client_commit_queue_len"); ok {
			return fmt.Sprintf("%d", v)
		}
		return "-"
	})
	row("inflight", func(i int) string {
		if v, ok := sumVal(diffs[i], obs.KindGauge, "redbud_rpc_inflight", "redbud_client_commit_threads"); ok {
			return fmt.Sprintf("%d", v)
		}
		return "-"
	})
	if !first {
		rate := func(names ...string) func(i int) string {
			return func(i int) string {
				if v, ok := sumVal(diffs[i], obs.KindCounter, names...); ok {
					return fmt.Sprintf("%.1f/s", float64(v)/interval.Seconds())
				}
				return "-"
			}
		}
		row("rpcs", rate("redbud_rpc_processed_total", "redbud_client_rpcs_total"))
		row("dedup hits", rate("redbud_mds_dedup_hits_total"))
		row("retries", rate("redbud_client_retries_total"))
	}
	b.WriteByte('\n')
}

// histP99 returns the worst p99 across every series in s matching any of the
// given metric names.
func histP99(s obs.Snapshot, names ...string) (float64, bool) {
	var worst float64
	found := false
	for _, m := range s.Metrics {
		if m.Hist == nil || m.Hist.Count == 0 {
			continue
		}
		for _, n := range names {
			if m.Name == n {
				found = true
				if m.Hist.P99 > worst {
					worst = m.Hist.P99
				}
			}
		}
	}
	return worst, found
}

// sumVal sums every series of the given kind in s matching any of the names.
func sumVal(s obs.Snapshot, kind string, names ...string) (int64, bool) {
	var sum int64
	found := false
	for _, m := range s.Metrics {
		if m.Kind != kind {
			continue
		}
		for _, n := range names {
			if m.Name == n {
				found = true
				sum += m.Value
			}
		}
	}
	return sum, found
}

// render polls one target and appends its panel.
func render(b *strings.Builder, httpc *http.Client, t *target, interval time.Duration) {
	fmt.Fprintf(b, "── %s ", t.addr)
	fmt.Fprintln(b, strings.Repeat("─", max(0, 60-len(t.addr))))
	snap, err := poll(httpc, t.addr)
	if err != nil {
		fmt.Fprintf(b, "  unreachable: %v\n\n", err)
		t.ok = false
		return
	}
	d := obs.Diff(t.prev, snap)
	first := !t.ok
	t.prev, t.ok = snap, true

	// Gauges: instantaneous state worth watching.
	for _, name := range []string{
		"redbud_client_commit_queue_len", "redbud_client_commit_threads",
		"redbud_client_compound_degree", "redbud_rpc_queue_len",
		"redbud_rpc_inflight", "redbud_meta_files",
	} {
		for _, m := range d.Metrics {
			if m.Name == name && m.Kind == obs.KindGauge {
				fmt.Fprintf(b, "  %-36s %12d  %s\n", name, m.Value, m.Labels)
			}
		}
	}
	// Histograms: commit latency quantiles over the last interval.
	for _, m := range d.Metrics {
		if m.Kind == obs.KindHistogram && m.Hist != nil && m.Hist.Count > 0 {
			fmt.Fprintf(b, "  %-36s p50 %8s  p99 %8s  n=%d  %s\n",
				m.Name, fmtSec(m.Hist.P50), fmtSec(m.Hist.P99), m.Hist.Count, m.Labels)
		}
	}
	// Counters: per-second rates from the interval delta (skip the first
	// poll, where the delta spans process lifetime).
	if !first {
		type rate struct {
			name, labels string
			persec       float64
		}
		var rates []rate
		for _, m := range d.Metrics {
			if m.Kind == obs.KindCounter && m.Value != 0 {
				rates = append(rates, rate{m.Name, m.Labels, float64(m.Value) / interval.Seconds()})
			}
		}
		sort.Slice(rates, func(i, j int) bool { return rates[i].persec > rates[j].persec })
		if len(rates) > 12 {
			rates = rates[:12]
		}
		for _, r := range rates {
			fmt.Fprintf(b, "  %-36s %12.1f/s  %s\n", r.name, r.persec, r.labels)
		}
	}
	b.WriteByte('\n')
}

// baseURL normalizes a debug address: bare ":9100" means localhost;
// "host:port" and full URLs work too.
func baseURL(addr string) string {
	switch {
	case strings.Contains(addr, "://"):
		return addr
	case strings.HasPrefix(addr, ":"):
		return "http://127.0.0.1" + addr
	default:
		return "http://" + addr
	}
}

// poll fetches and decodes one /metrics.json snapshot.
func poll(httpc *http.Client, addr string) (obs.Snapshot, error) {
	resp, err := httpc.Get(baseURL(addr) + "/metrics.json")
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	var s obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return obs.Snapshot{}, err
	}
	return s, nil
}

// pollCluster fetches and decodes one /cluster/metrics.json round.
func pollCluster(httpc *http.Client, addr string) (clusterSnap, error) {
	resp, err := httpc.Get(baseURL(addr) + "/cluster/metrics.json")
	if err != nil {
		return clusterSnap{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clusterSnap{}, fmt.Errorf("%s: %s", addr, resp.Status)
	}
	var cs clusterSnap
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return clusterSnap{}, err
	}
	return cs, nil
}

// fmtSec renders a duration in seconds with a sensible unit.
func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
