package blockdev

import (
	"errors"
	"math/rand"
	"sync"
)

// Injected device faults. A fault fires at completion time, after the
// request's service time has been paid, mimicking a drive that seeks, spins,
// and then reports a medium error — or loses power mid-sector.

// ErrInjected is the sentinel wrapped by every fault-injected I/O error.
var ErrInjected = errors.New("blockdev: injected I/O fault")

// WriteFault is the fate assigned to one write request.
type WriteFault int

// Write fates.
const (
	// WriteOK persists the request normally.
	WriteOK WriteFault = iota
	// WriteError fails the request; nothing is persisted.
	WriteError
	// WriteTorn persists only a prefix of the request, then fails it. The
	// durability record covers exactly the persisted prefix, so the
	// ordered-write oracle sees the full range as not durable.
	WriteTorn
)

// WriteFaultFunc decides the fate of one write request of n bytes at off.
// For WriteTorn it also returns how many leading bytes survive; the device
// clamps the prefix to [0, n). Called from the device scheduler goroutine,
// so implementations must be fast and must not call back into the device.
type WriteFaultFunc func(off, n int64) (WriteFault, int64)

// ProbFaults returns a seeded WriteFaultFunc that fails writes with
// probability errProb and tears them with probability tornProb (a torn write
// keeps a uniformly random prefix). The stream of decisions is a pure
// function of the seed and the request sequence.
func ProbFaults(seed int64, errProb, tornProb float64) WriteFaultFunc {
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func(off, n int64) (WriteFault, int64) {
		mu.Lock()
		defer mu.Unlock()
		p, frac := rng.Float64(), rng.Float64()
		switch {
		case p < errProb:
			return WriteError, 0
		case p < errProb+tornProb:
			return WriteTorn, int64(frac * float64(n))
		}
		return WriteOK, 0
	}
}

// SetWriteFault installs (or, with nil, removes) the device's write-fault
// hook. Tests arm it mid-run to tear an exact write, e.g. a journal batch.
func (d *Device) SetWriteFault(fn WriteFaultFunc) {
	d.mu.Lock()
	d.writeFault = fn
	d.mu.Unlock()
}

// InjectedFaults reports how many write faults the device has injected.
func (d *Device) InjectedFaults() int64 { return d.nFaults.Load() }
