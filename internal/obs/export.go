package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4). Output is deterministic: metrics sort by (name, labels)
// and floats use shortest-round-trip formatting.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteSnapshotPrometheus(w, r.Snapshot())
}

// WriteSnapshotPrometheus renders an already-taken snapshot (used to export
// a Diff between two snapshots).
func WriteSnapshotPrometheus(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, m := range s.Metrics {
		if m.Name != lastName {
			if m.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.Name, m.Help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.Name, m.Kind)
			lastName = m.Name
		}
		switch m.Kind {
		case KindHistogram:
			if m.Hist == nil {
				continue
			}
			for _, b := range m.Hist.Buckets {
				fmt.Fprintf(bw, "%s_bucket{%sle=%q} %d\n", m.Name, labelPrefix(m.Labels), formatFloat(b.LE), b.Count)
			}
			fmt.Fprintf(bw, "%s_bucket{%sle=\"+Inf\"} %d\n", m.Name, labelPrefix(m.Labels), m.Hist.Count)
			fmt.Fprintf(bw, "%s_sum%s %s\n", m.Name, labelBlock(m.Labels), formatFloat(m.Hist.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", m.Name, labelBlock(m.Labels), m.Hist.Count)
		default:
			fmt.Fprintf(bw, "%s%s %d\n", m.Name, labelBlock(m.Labels), m.Value)
		}
	}
	return bw.Flush()
}

// labelBlock renders `{a="b"}` or "" for a rendered label string.
func labelBlock(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// labelPrefix renders `a="b",` or "" — for merging with a le label.
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the registry snapshot as indented JSON (the
// /metrics.json payload cmd/redbud-top polls).
func (r *Registry) WriteJSON(w io.Writer) error {
	return WriteSnapshotJSON(w, r.Snapshot())
}

// WriteSnapshotJSON renders an already-taken snapshot as indented JSON.
func WriteSnapshotJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
