package core

import (
	"errors"
	"fmt"
	"sync"

	"redbud/internal/alloc"
	"redbud/internal/stats"
)

// ErrPoolClosed is returned by Alloc after Close.
var ErrPoolClosed = errors.New("core: space pool closed")

// ErrTooLarge signals a request bigger than the delegation chunk; the caller
// must apply to the MDS directly (§IV-A: "Large file requests, whose request
// size is larger than the chunk size, apply for the physical space directly
// from the MDS").
var ErrTooLarge = errors.New("core: request exceeds delegation chunk")

// chunk is one delegated span being carved.
type chunk struct {
	span alloc.Span
	next int64 // next free offset within span
}

func (c *chunk) remaining() int64 {
	if c == nil {
		return 0
	}
	return c.span.End() - c.next
}

func (c *chunk) carve(n int64) alloc.Span {
	sp := alloc.Span{Dev: c.span.Dev, Off: c.next, Len: n}
	c.next += n
	return sp
}

// SpacePoolConfig configures a double-space-pool.
type SpacePoolConfig struct {
	// ChunkSize is the delegation unit (the paper's experiments use 16 MiB).
	ChunkSize int64
	// Delegate obtains a fresh chunk from the MDS (a Delegate RPC).
	Delegate func(size int64) (alloc.Span, error)
	// NoPrefetch disables the background refill of the standby pool
	// (ablation: single pool with blocking refill vs double-space-pool).
	NoPrefetch bool
}

// SpacePool is the client side of space delegation: a double-space-pool, one
// pool active and one standby, used exchangeably. The active pool serves
// allocation until its free space cannot fit the running request; then the
// standby becomes active and the emptied pool is refilled in the background,
// so small-file allocation almost never waits on the MDS (§IV-A).
type SpacePool struct {
	cfg SpacePoolConfig

	mu        sync.Mutex
	active    *chunk
	standby   *chunk
	refilling bool
	refillErr error
	refillCh  chan struct{} // closed when an in-flight refill lands
	closed    bool
	held      []alloc.Span // every chunk ever delegated (for ReturnAll)

	localAllocs stats.Counter
	refills     stats.Counter
	wasted      stats.Counter // bytes stranded in swapped-out chunks
}

// NewSpacePool returns an empty pool; the first Alloc triggers delegation.
func NewSpacePool(cfg SpacePoolConfig) *SpacePool {
	if cfg.ChunkSize <= 0 {
		panic("core: space pool needs a chunk size")
	}
	if cfg.Delegate == nil {
		panic("core: space pool needs a delegate function")
	}
	return &SpacePool{cfg: cfg}
}

// Alloc carves n bytes of pre-delegated physical space. Requests larger than
// the chunk size return ErrTooLarge — the caller applies to the MDS. The
// fast path never leaves the client; a swap to the standby pool triggers an
// asynchronous refill, and only a completely dry pool (cold start, or a
// burst outrunning the refill) waits for the MDS.
func (p *SpacePool) Alloc(n int64) (alloc.Span, error) {
	if n <= 0 {
		return alloc.Span{}, fmt.Errorf("core: invalid allocation size %d", n)
	}
	if n > p.cfg.ChunkSize {
		return alloc.Span{}, ErrTooLarge
	}
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return alloc.Span{}, ErrPoolClosed
		}
		if p.active.remaining() >= n {
			sp := p.active.carve(n)
			p.localAllocs.Inc()
			p.mu.Unlock()
			return sp, nil
		}
		// Swap in the standby; the exhausted chunk's tail is stranded
		// (its unused space returns to the MDS with the delegation).
		if p.standby != nil {
			p.wasted.Add(p.active.remaining())
			p.active = p.standby
			p.standby = nil
			if !p.cfg.NoPrefetch {
				p.startRefillLocked()
			}
			continue
		}
		// Nothing usable: make sure a refill is in flight and wait.
		p.startRefillLocked()
		if p.refillErr != nil {
			err := p.refillErr
			p.refillErr = nil
			p.mu.Unlock()
			return alloc.Span{}, err
		}
		ch := p.refillCh
		p.mu.Unlock()
		<-ch
		p.mu.Lock()
		// Loop: promote the landed standby and retry.
		if p.standby != nil {
			if p.active.remaining() > 0 {
				p.wasted.Add(p.active.remaining())
			}
			p.active = p.standby
			p.standby = nil
			p.startRefillLocked()
		}
	}
}

// startRefillLocked launches a background Delegate RPC if none is running
// and the standby slot is empty. Caller holds p.mu.
func (p *SpacePool) startRefillLocked() {
	if p.refilling || p.standby != nil || p.closed {
		return
	}
	p.refilling = true
	p.refillCh = make(chan struct{})
	ch := p.refillCh
	go func() {
		sp, err := p.cfg.Delegate(p.cfg.ChunkSize)
		p.mu.Lock()
		p.refilling = false
		if err != nil {
			p.refillErr = err
		} else {
			p.refills.Inc()
			p.held = append(p.held, sp)
			p.standby = &chunk{span: sp, next: sp.Off}
		}
		close(ch)
		p.mu.Unlock()
	}()
}

// Stats returns (local allocations, chunks delegated, bytes stranded by
// swaps).
func (p *SpacePool) Stats() (localAllocs, refills, wastedBytes int64) {
	return p.localAllocs.Load(), p.refills.Load(), p.wasted.Load()
}

// Held returns every span delegated to this pool since creation.
func (p *SpacePool) Held() []alloc.Span {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]alloc.Span, len(p.held))
	copy(out, p.held)
	return out
}

// Close stops the pool and returns the delegated spans, so the owner can
// hand them back to the MDS (after draining pending commits — the MDS frees
// only never-committed sub-ranges).
func (p *SpacePool) Close() []alloc.Span {
	p.mu.Lock()
	p.closed = true
	out := make([]alloc.Span, len(p.held))
	copy(out, p.held)
	p.mu.Unlock()
	return out
}
