package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrameDecode fuzzes the RPC response-frame decode sequence (message ID,
// kind, status, load, length-prefixed payload) against two properties: a
// failed decode reports a wrapped ErrTruncated/ErrTooLong sentinel, and a
// successful decode round-trips — re-encoding the decoded fields reproduces
// the consumed bytes exactly.
func FuzzFrameDecode(f *testing.F) {
	// Seeds: the two malformed response frames from the rpc ErrBadFrame
	// tests (truncated after the message ID; payload length overrunning the
	// frame), plus a well-formed frame.
	var short Buffer
	short.PutU64(7)
	f.Add(short.Bytes())

	var overrun Buffer
	overrun.PutU64(7)
	overrun.PutU8(1)
	overrun.PutU16(0)
	overrun.PutU8(0)
	overrun.PutU32(1 << 20) // payload length with no payload bytes
	f.Add(overrun.Bytes())

	var good Buffer
	good.PutU64(42)
	good.PutU8(1)
	good.PutU16(3)
	good.PutU8(200)
	good.PutBytes([]byte("payload"))
	f.Add(good.Bytes())

	// A v2 Hello frame: the payload is proto.HelloReq's v2 encoding —
	// owner string plus the trailing-optional ProtoVersion field (built by
	// hand; proto imports wire, so wire's tests cannot import proto).
	var helloBody Buffer
	helloBody.PutString("owner-1")
	helloBody.PutU32(2) // ProtoV2
	var hello Buffer
	hello.PutU64(43)
	hello.PutU8(1)
	hello.PutU16(0)
	hello.PutU8(0)
	hello.PutBytes(helloBody.Bytes())
	f.Add(hello.Bytes())

	// The same Hello truncated exactly at the optional boundary: the
	// payload stops where ProtoVersion would begin — the v1 frame shape a
	// v2 decoder must read as "field absent", not as an error.
	var helloV1Body Buffer
	helloV1Body.PutString("owner-1")
	var helloV1 Buffer
	helloV1.PutU64(44)
	helloV1.PutU8(1)
	helloV1.PutU16(0)
	helloV1.PutU8(0)
	helloV1.PutBytes(helloV1Body.Bytes())
	f.Add(helloV1.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		id := r.U64()
		kind := r.U8()
		status := r.U16()
		load := r.U8()
		payload := r.BytesRef()
		if err := r.Err(); err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrTooLong) {
				t.Fatalf("decode error is not ErrTruncated/ErrTooLong: %v", err)
			}
			return
		}
		var b Buffer
		b.PutU64(id)
		b.PutU8(kind)
		b.PutU16(status)
		b.PutU8(load)
		b.PutBytes(payload)
		consumed := len(data) - r.Remaining()
		if !bytes.Equal(b.Bytes(), data[:consumed]) {
			t.Fatalf("round-trip mismatch:\n consumed: %x\n re-encoded: %x", data[:consumed], b.Bytes())
		}
	})
}
