package lint

// wireevolve: the protocol-evolution rules that keep v1 and v2 sessions
// interoperable.
//
// Rule 1 (trailing optionals): an optional field group must be the last
// thing in its sequence. A v1 decoder stops before the optional tail and a
// v2 decoder detects its absence from a short frame; an optional in the
// middle would shift every later field. A corollary: optionals inside a
// repeated element are never evolvable, because elements are concatenated —
// there is no per-element frame boundary to detect absence from.
//
// Rule 2 (Remaining guards): a decoder-side optional must be guarded by
// r.Remaining(), the only way to distinguish "v1 peer, field absent" from a
// truncated frame. Encoders gate on the negotiated version instead.
//
// Rule 3 (version clamps): a v2-gated capability flag decoded from a request
// must be stripped before acting on it unless the requesting session
// negotiated the required version. The rule is enforced on the MDS package:
// any function that consumes such a flag must also contain a clamp —
// a `&^=`/`&^` clearing of the flag under a condition that checks the
// session's protocol version.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WireEvolve checks protocol-evolution discipline.
var WireEvolve = &Analyzer{
	Name: "wireevolve",
	Doc:  "optional wire fields must be trailing and Remaining()-guarded; v2-gated flags must be version-clamped on the MDS",
	Run:  runWireEvolve,
}

// gatedFlags lists version-gated capability flags and the package whose
// request handlers must clamp them. Matching is by package name so fixture
// packages mirroring the real ones exercise the rule.
var gatedFlags = []struct {
	flagPkg, flagName string // the constant
	serverPkg         string // package that must clamp it
}{
	{"meta", "LayoutWantUncommitted", "mds"},
}

func runWireEvolve(pass *Pass) error {
	for _, s := range ExtractPassSchemas(pass) {
		checkEvolveSeq(pass, s, s.Enc, false, false)
		checkEvolveSeq(pass, s, s.Dec, true, false)
	}
	checkVersionClamps(pass)
	return nil
}

// checkEvolveSeq enforces rules 1 and 2 over one extracted sequence.
func checkEvolveSeq(pass *Pass, s *MessageSchema, seq []WireOp, isDecoder, inLoop bool) {
	for i, op := range seq {
		switch op.Kind {
		case "opt":
			switch {
			case inLoop:
				pass.Reportf(op.Pos, "%s: optional field group inside a repeated element is not evolvable: concatenated elements leave no frame boundary to detect absence from", s.DisplayName())
			case i != len(seq)-1:
				pass.Reportf(op.Pos, "%s: optional field group is not trailing: required fields follow it, so a peer that omits it misparses the rest of the frame", s.DisplayName())
			}
			if isDecoder && !op.Guarded {
				pass.Reportf(op.Pos, "%s: decoder-side optional is not guarded by r.Remaining(): a short frame from an older peer must decode as \"field absent\", not as garbage or an error", s.DisplayName())
			}
			checkEvolveSeq(pass, s, op.Body, isDecoder, inLoop)
		case "loop":
			checkEvolveSeq(pass, s, op.Body, isDecoder, true)
		}
	}
}

// checkVersionClamps enforces rule 3: in each server package, every function
// consuming a gated flag must contain a version clamp for it.
func checkVersionClamps(pass *Pass) {
	for _, gf := range gatedFlags {
		if pass.Pkg.Name() != gf.serverPkg {
			continue
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
					continue
				}
				firstUse := firstFlagUse(pass.Info, fd.Body, gf.flagPkg, gf.flagName)
				if !firstUse.IsValid() {
					continue
				}
				if !hasVersionClamp(pass.Info, fd.Body, gf.flagPkg, gf.flagName) {
					pass.Reportf(firstUse, "%s.%s is a v2-gated capability consumed without a protocol-version clamp: strip it for sub-version sessions (flags &^= %s.%s under a sessionVersion/ProtoV check) before acting on it",
						gf.flagPkg, gf.flagName, gf.flagPkg, gf.flagName)
				}
			}
		}
	}
}

// isGatedFlagUse reports whether n is a use of the constant pkgName.constName.
func isGatedFlagUse(info *types.Info, n ast.Node, pkgName, constName string) bool {
	id, ok := n.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := info.Uses[id].(*types.Const)
	if !ok || obj.Name() != constName {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// firstFlagUse returns the position of the first use of the flag under n.
func firstFlagUse(info *types.Info, n ast.Node, pkgName, constName string) token.Pos {
	pos := token.NoPos
	ast.Inspect(n, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		if isGatedFlagUse(info, n, pkgName, constName) {
			pos = n.Pos()
			return false
		}
		return true
	})
	return pos
}

// hasVersionClamp reports whether n contains an if statement whose condition
// mentions a protocol-version check and whose body clears the flag with
// AND-NOT.
func hasVersionClamp(info *types.Info, n ast.Node, pkgName, constName string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !condChecksVersion(ifs.Cond) {
			return true
		}
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			if found {
				return false
			}
			if clearsFlag(info, m, pkgName, constName) {
				found = true
				return false
			}
			return true
		})
		return true
	})
	return found
}

// condChecksVersion heuristically recognises a protocol-version condition:
// it mentions a ProtoV* constant or calls something named *essionVersion.
func condChecksVersion(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if strings.HasPrefix(id.Name, "ProtoV") || strings.Contains(id.Name, "essionVersion") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// clearsFlag recognises `x &^= FLAG`, `x = x &^ FLAG` and `x &= ^FLAG`.
func clearsFlag(info *types.Info, n ast.Node, pkgName, constName string) bool {
	usesFlag := func(e ast.Expr) bool {
		return firstFlagUse(info, e, pkgName, constName).IsValid()
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) != 1 {
			return false
		}
		switch n.Tok {
		case token.AND_NOT_ASSIGN:
			return usesFlag(n.Rhs[0])
		case token.AND_ASSIGN:
			if u, ok := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.XOR {
				return usesFlag(u.X)
			}
		case token.ASSIGN, token.DEFINE:
			if b, ok := ast.Unparen(n.Rhs[0]).(*ast.BinaryExpr); ok && b.Op == token.AND_NOT {
				return usesFlag(b.Y)
			}
		}
	}
	return false
}
