// Package debughttp mirrors redbud/internal/obs/debughttp: an allow-listed
// wall-clock user. No diagnostics expected despite the banned calls.
package debughttp

import "time"

func uptime(start time.Time) time.Duration {
	_ = time.Now()
	return time.Since(start)
}
