package rpc

import (
	"testing"

	"redbud/internal/clock"
	"redbud/internal/netsim"
)

func benchPair(b *testing.B, daemons int) *Client {
	b.Helper()
	n := netsim.NewNetwork(clock.Real(1))
	n.AddHost("c", netsim.Instant())
	n.AddHost("s", netsim.Instant())
	l, err := n.Listen("s")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(ServerConfig{Handler: testHandler, Daemons: daemons})
	go srv.Serve(l)
	conn, err := n.Dial("c", "s")
	if err != nil {
		b.Fatal(err)
	}
	cli := NewClient(conn, clock.Real(1))
	b.Cleanup(func() {
		cli.Close()
		srv.Close()
		l.Close()
	})
	return cli
}

func BenchmarkCallEcho(b *testing.B) {
	cli := benchPair(b, 4)
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.CallRaw(opEcho, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallParallel(b *testing.B) {
	cli := benchPair(b, 8)
	payload := make([]byte, 128)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cli.CallRaw(opEcho, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRPCAlloc tracks allocations per call on the framing hot path:
// request encode, server decode + response encode, client response dispatch.
func BenchmarkRPCAlloc(b *testing.B) {
	cli := benchPair(b, 4)
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.CallRaw(opEcho, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompoundDegree6(b *testing.B) {
	cli := benchPair(b, 4)
	ops := make([]SubOp, 6)
	for i := range ops {
		ops[i] = SubOp{Op: opEcho, Body: make([]byte, 64)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Compound(ops); err != nil {
			b.Fatal(err)
		}
	}
}
