// Package stats provides the lightweight metric primitives used by the
// simulator: atomic counters and gauges, fixed-bucket latency histograms, and
// time-series samplers. These back every number the experiment harness
// reports (throughput, latency percentiles, merge ratios, the commit-queue /
// commit-thread traces of Figure 6).
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (may be negative) and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DurationSum accumulates a total duration and a count, giving a cheap mean.
type DurationSum struct {
	sum   atomic.Int64 // nanoseconds
	count atomic.Int64
}

// Observe records one duration.
func (d *DurationSum) Observe(dur time.Duration) {
	d.sum.Add(int64(dur))
	d.count.Add(1)
}

// Count returns the number of observations.
func (d *DurationSum) Count() int64 { return d.count.Load() }

// Total returns the accumulated duration.
func (d *DurationSum) Total() time.Duration { return time.Duration(d.sum.Load()) }

// Mean returns the average duration, or zero with no observations.
func (d *DurationSum) Mean() time.Duration {
	n := d.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(d.sum.Load() / n)
}

// Histogram is a concurrency-safe histogram with exponential bucket bounds,
// intended for latency distributions. The zero value is unusable; construct
// with NewHistogram.
type Histogram struct {
	bounds []float64 // upper bounds, strictly increasing
	mu     sync.Mutex
	counts []int64 // len(bounds)+1; last bucket is overflow
	sum    float64
	min    float64
	max    float64
	n      int64
}

// NewHistogram builds a histogram with nbuckets exponential buckets spanning
// [lo, hi]. Panics on invalid arguments.
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if lo <= 0 || hi <= lo || nbuckets < 1 {
		panic("stats: invalid histogram bounds")
	}
	bounds := make([]float64, nbuckets)
	ratio := math.Pow(hi/lo, 1/float64(nbuckets-1))
	b := lo
	for i := range bounds {
		bounds[i] = b
		b *= ratio
	}
	return &Histogram{bounds: bounds, counts: make([]int64, nbuckets+1), min: math.Inf(1), max: math.Inf(-1)}
}

// NewLatencyHistogram builds a histogram suited to I/O latencies:
// 1 µs .. 100 s over 64 buckets. Observations are in seconds.
func NewLatencyHistogram() *Histogram { return NewHistogram(1e-6, 100, 64) }

// HistogramFromBuckets reconstructs a histogram from exported bucket state —
// the inverse of Buckets(), for aggregators that scraped a histogram's
// rendering and want to fold it into a merge. bounds are the upper bounds
// (strictly increasing); counts has len(bounds)+1 entries with the overflow
// last. sum/min/max/n carry the scalar moments (min/max are ignored when
// n == 0). Panics on mismatched or empty layouts, like NewHistogram.
func HistogramFromBuckets(bounds []float64, counts []int64, sum, min, max float64, n int64) *Histogram {
	if len(bounds) < 1 || len(counts) != len(bounds)+1 {
		panic("stats: invalid bucket layout")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: bucket bounds not increasing")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: append([]int64(nil), counts...),
		sum:    sum,
		min:    math.Inf(1),
		max:    math.Inf(-1),
		n:      n,
	}
	if n > 0 {
		h.min, h.max = min, max
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) using the
// bucket upper bounds. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Buckets returns copies of the bucket upper bounds and per-bucket counts.
// counts has len(bounds)+1 entries; the last is the overflow bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = make([]int64, len(h.counts))
	copy(counts, h.counts)
	return bounds, counts
}

// Merge folds other's observations into h. Both histograms must share the
// same bucket bounds (same constructor arguments); Merge panics otherwise.
// other is snapshotted under its own lock first, so the two histograms'
// locks are never held together.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.bounds) != len(other.bounds) {
		panic("stats: Merge on histograms with different bucket layouts")
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			panic("stats: Merge on histograms with different bucket layouts")
		}
	}
	other.mu.Lock()
	counts := make([]int64, len(other.counts))
	copy(counts, other.counts)
	sum, min, max, n := other.sum, other.min, other.max, other.n
	other.mu.Unlock()
	if n == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.sum += sum
	h.n += n
	if min < h.min {
		h.min = min
	}
	if max > h.max {
		h.max = max
	}
	h.mu.Unlock()
}

// String summarizes the histogram for reports.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.6g p50=%.6g p99=%.6g max=%.6g",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Sample is one (time, value) point of a time series.
type Sample struct {
	T time.Time
	V float64
}

// Series is an append-only concurrency-safe time series, used to record the
// commit-queue length and commit-thread count traces of Figure 6.
type Series struct {
	mu   sync.Mutex
	name string
	data []Sample
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Record appends one sample.
func (s *Series) Record(t time.Time, v float64) {
	s.mu.Lock()
	s.data = append(s.data, Sample{t, v})
	s.mu.Unlock()
}

// Samples returns a copy of all recorded samples.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.data))
	copy(out, s.data)
	return out
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Max returns the maximum sample value (0 when empty).
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0.0
	for _, p := range s.data {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// Mean returns the mean sample value (0 when empty).
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.data) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.data {
		sum += p.V
	}
	return sum / float64(len(s.data))
}

// Downsample returns at most n samples evenly spaced across the series,
// always including the first and last point.
func (s *Series) Downsample(n int) []Sample {
	all := s.Samples()
	if n <= 0 || len(all) <= n {
		return all
	}
	out := make([]Sample, 0, n)
	step := float64(len(all)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, all[int(math.Round(float64(i)*step))])
	}
	return out
}
