package workload

import (
	"fmt"
	"time"

	"redbud/internal/clock"
	"redbud/internal/fsapi"
)

// ConflictResult reports the conflict-read probe: for every BT block, how
// long after the writer's WriteAt returned a second mount first observed the
// block's content.
type ConflictResult struct {
	Blocks    int
	Latencies []time.Duration
	Elapsed   time.Duration
}

// MeanLatency is the average time-to-visibility across blocks.
func (r ConflictResult) MeanLatency() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range r.Latencies {
		sum += d
	}
	return sum / time.Duration(len(r.Latencies))
}

// MaxLatency is the worst observed time-to-visibility.
func (r ConflictResult) MaxLatency() time.Duration {
	var max time.Duration
	for _, d := range r.Latencies {
		if d > max {
			max = d
		}
	}
	return max
}

// RunBTConflict measures the paper's conflict-read path (§V-C) directly:
// rank blocks are written through the writer mount in BT's interleaved
// order, and after each block a reader on a different mount polls until it
// observes the block's marker bytes. The poll re-opens the file each probe —
// the attr fetch plus layout probe a cold conflict reader performs — so the
// loop works identically whether visibility arrives with the writer's commit
// (committed-only) or already at intent publication (early visibility); only
// the measured latency differs. There is no drain between write and poll:
// the commit pipeline races the reader, which is the point.
func RunBTConflict(writer, reader fsapi.FileSystem, clk clock.Clock, spec BTSpec) (ConflictResult, error) {
	if clk == nil {
		clk = clock.Real(1)
	}
	if writer == nil || reader == nil || writer == reader {
		return ConflictResult{}, fmt.Errorf("workload: BT conflict needs two distinct mounts")
	}
	if spec.Ranks <= 0 || spec.Steps <= 0 || spec.BlockSize <= 0 {
		return ConflictResult{}, fmt.Errorf("workload: bad BT spec %+v", spec)
	}
	if err := writer.Mkdir("/npb"); err != nil {
		return ConflictResult{}, err
	}
	const path = "/npb/conflict.out"
	wf, err := writer.Create(path)
	if err != nil {
		return ConflictResult{}, err
	}
	defer wf.Close()

	res := ConflictResult{}
	start := clk.Now()
	buf := make([]byte, spec.BlockSize)
	for st := 0; st < spec.Steps; st++ {
		for r := 0; r < spec.Ranks; r++ {
			off := spec.blockOff(st, r)
			want := spec.marker(st, r)
			if _, err := wf.WriteAt(fill(spec.BlockSize, want), off); err != nil {
				return res, err
			}
			wrote := clk.Now()
			for {
				rf, err := reader.Open(path)
				if err != nil {
					return res, err
				}
				n, err := rf.ReadAt(buf, off)
				rf.Close()
				if err != nil {
					return res, err
				}
				if int64(n) == spec.BlockSize &&
					buf[0] == want && buf[spec.BlockSize-1] == byte(spec.BlockSize-1)*13+want {
					break
				}
				clk.Sleep(50 * time.Microsecond)
			}
			res.Blocks++
			res.Latencies = append(res.Latencies, clk.Now().Sub(wrote))
		}
	}
	res.Elapsed = clk.Now().Sub(start)
	return res, nil
}
