// Command redbud-benchdiff gates benchmark regressions: it compares a fresh
// BENCH_*.json report against the baseline committed under bench/baselines/
// and exits non-zero if any metric is worse than the baseline by more than
// the tolerance band.
//
//	redbud-benchdiff -baseline bench/baselines/BENCH_mds.json -current BENCH_mds.json
//	redbud-benchdiff -baseline bench/baselines/BENCH_obs.json -current BENCH_obs.json -tol 0.15
//	redbud-benchdiff -baseline bench/baselines/BENCH_mds.json -current BENCH_mds.json -update
//
// Reports are matched by their "figure" field (the Figure 7 MDS sweep and the
// obs critical-path report are supported). All compared numbers are
// virtual-time, so a laptop run and a CI run of the same parameters are
// directly comparable. -update rewrites the baseline with the current report
// after a deliberate performance change — commit the result.
package main

import (
	"flag"
	"fmt"
	"os"

	"redbud/internal/bench"
)

func main() {
	var (
		baseline = flag.String("baseline", "", "committed baseline report (required)")
		current  = flag.String("current", "", "freshly generated report (required)")
		tol      = flag.Float64("tol", 0.10, "relative tolerance band; 0.10 allows metrics 10% worse than baseline")
		update   = flag.Bool("update", false, "overwrite the baseline with the current report instead of diffing")
	)
	flag.Parse()

	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "usage: redbud-benchdiff -baseline <committed.json> -current <fresh.json> [-tol 0.10] [-update]")
		os.Exit(2)
	}
	cur, err := os.ReadFile(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *update {
		if err := os.WriteFile(*baseline, cur, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("baseline %s updated from %s\n", *baseline, *current)
		return
	}
	base, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	regs, err := bench.CompareReports(base, cur, *tol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "%d benchmark regression(s) against %s (tol %.0f%%):\n", len(regs), *baseline, *tol*100)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("%s: no regressions against %s (tol %.0f%%)\n", *current, *baseline, *tol*100)
}
