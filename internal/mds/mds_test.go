package mds

import (
	"errors"
	"strings"
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/clock"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/proto"
	"redbud/internal/rpc"
	"redbud/internal/wire"
)

// env is a live MDS plus a connected RPC client.
type env struct {
	srv *Server
	cli *rpc.Client
	net *netsim.Network
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	if cfg.Store == nil {
		ags := alloc.NewUniformAGSet(alloc.RoundRobin, 0, 256<<20, 4)
		cfg.Store = meta.NewStore(meta.Config{AGs: ags, Clock: clock.Real(1)})
	}
	srv := New(cfg)
	n := netsim.NewNetwork(clock.Real(1))
	n.AddHost("mds", netsim.Instant())
	n.AddHost("c1", netsim.Instant())
	l, err := n.Listen("mds")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	conn, err := n.Dial("c1", "mds")
	if err != nil {
		t.Fatal(err)
	}
	cli := rpc.NewClient(conn, clock.Real(1))
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		l.Close()
	})
	return &env{srv: srv, cli: cli, net: n}
}

func (e *env) create(t *testing.T, parent meta.FileID, name string, typ meta.FileType) proto.AttrResp {
	t.Helper()
	var resp proto.AttrResp
	if err := e.cli.Call(proto.OpCreate, &proto.CreateReq{Parent: parent, Name: name, Type: typ}, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestPing(t *testing.T) {
	e := newEnv(t, Config{})
	if err := e.cli.Call(proto.OpPing, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCreateLookupGetAttrOverRPC(t *testing.T) {
	e := newEnv(t, Config{})
	a := e.create(t, meta.RootID, "f.txt", meta.TypeFile)
	var look proto.AttrResp
	if err := e.cli.Call(proto.OpLookup, &proto.LookupReq{Parent: meta.RootID, Name: "f.txt"}, &look); err != nil {
		t.Fatal(err)
	}
	if look.ID != a.ID {
		t.Fatalf("lookup id %d != create id %d", look.ID, a.ID)
	}
	var attr proto.AttrResp
	if err := e.cli.Call(proto.OpGetAttr, &proto.GetAttrReq{ID: a.ID}, &attr); err != nil {
		t.Fatal(err)
	}
	if attr.Type != meta.TypeFile || attr.Size != 0 {
		t.Fatalf("attr = %+v", attr)
	}
}

func TestLookupMissingIsRemoteError(t *testing.T) {
	e := newEnv(t, Config{})
	var resp proto.AttrResp
	err := e.cli.Call(proto.OpLookup, &proto.LookupReq{Parent: meta.RootID, Name: "nope"}, &resp)
	var re *rpc.RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Message, "not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadDirAndRemoveOverRPC(t *testing.T) {
	e := newEnv(t, Config{})
	dir := e.create(t, meta.RootID, "d", meta.TypeDir)
	e.create(t, dir.ID, "x", meta.TypeFile)
	var rd proto.ReadDirResp
	if err := e.cli.Call(proto.OpReadDir, &proto.ReadDirReq{ID: dir.ID}, &rd); err != nil {
		t.Fatal(err)
	}
	if len(rd.Entries) != 1 || rd.Entries[0].Name != "x" {
		t.Fatalf("entries = %+v", rd.Entries)
	}
	if err := e.cli.Call(proto.OpRemove, &proto.RemoveReq{Parent: dir.ID, Name: "x"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.cli.Call(proto.OpReadDir, &proto.ReadDirReq{ID: dir.ID}, &rd); err != nil {
		t.Fatal(err)
	}
	if len(rd.Entries) != 0 {
		t.Fatalf("entries after remove = %+v", rd.Entries)
	}
}

func TestLayoutGetWriteAllocates(t *testing.T) {
	e := newEnv(t, Config{})
	a := e.create(t, meta.RootID, "f", meta.TypeFile)
	var lay proto.LayoutResp
	err := e.cli.Call(proto.OpLayoutGet, &proto.LayoutGetReq{Owner: "c1", File: a.ID, Off: 0, Len: 8192, Flags: meta.LayoutWrite}, &lay)
	if err != nil {
		t.Fatal(err)
	}
	var covered int64
	for _, ext := range lay.Extents {
		covered += ext.Len
		if ext.State != meta.StateUncommitted {
			t.Fatalf("fresh extent state = %v", ext.State)
		}
	}
	if covered != 8192 {
		t.Fatalf("covered %d bytes", covered)
	}
	// Read layout hides the uncommitted extents.
	var rlay proto.LayoutResp
	if err := e.cli.Call(proto.OpLayoutGet, &proto.LayoutGetReq{File: a.ID, Off: 0, Len: 8192}, &rlay); err != nil {
		t.Fatal(err)
	}
	if len(rlay.Extents) != 0 {
		t.Fatalf("read layout shows uncommitted extents: %+v", rlay.Extents)
	}
}

func TestCommitOverRPC(t *testing.T) {
	e := newEnv(t, Config{})
	a := e.create(t, meta.RootID, "f", meta.TypeFile)
	var lay proto.LayoutResp
	if err := e.cli.Call(proto.OpLayoutGet, &proto.LayoutGetReq{Owner: "c1", File: a.ID, Off: 0, Len: 4096, Flags: meta.LayoutWrite}, &lay); err != nil {
		t.Fatal(err)
	}
	mt := time.Unix(1000, 0).UTC()
	var cr proto.CommitResp
	err := e.cli.Call(proto.OpCommit, &proto.CommitReq{Owner: "c1", File: a.ID, Size: 4096, MTime: mt, Extents: lay.Extents}, &cr)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Size != 4096 {
		t.Fatalf("committed size = %d", cr.Size)
	}
	var rlay proto.LayoutResp
	if err := e.cli.Call(proto.OpLayoutGet, &proto.LayoutGetReq{File: a.ID, Off: 0, Len: 4096}, &rlay); err != nil {
		t.Fatal(err)
	}
	if len(rlay.Extents) == 0 || rlay.Size != 4096 {
		t.Fatalf("post-commit read layout = %+v", rlay)
	}
}

func TestCommitCheckHookRejects(t *testing.T) {
	boom := errors.New("data not durable")
	e := newEnv(t, Config{CommitCheck: func([]meta.Extent) error { return boom }})
	a := e.create(t, meta.RootID, "f", meta.TypeFile)
	var lay proto.LayoutResp
	if err := e.cli.Call(proto.OpLayoutGet, &proto.LayoutGetReq{Owner: "c1", File: a.ID, Off: 0, Len: 4096, Flags: meta.LayoutWrite}, &lay); err != nil {
		t.Fatal(err)
	}
	err := e.cli.Call(proto.OpCommit, &proto.CommitReq{Owner: "c1", File: a.ID, Size: 4096, MTime: time.Now(), Extents: lay.Extents}, nil)
	if err == nil || !strings.Contains(err.Error(), "ordered-write violation") {
		t.Fatalf("err = %v", err)
	}
}

func TestDelegateAndReturnOverRPC(t *testing.T) {
	e := newEnv(t, Config{})
	var sp proto.SpanMsg
	if err := e.cli.Call(proto.OpDelegate, &proto.DelegateReq{Owner: "c1", Size: 16 << 20}, &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Len != 16<<20 {
		t.Fatalf("span = %+v", sp)
	}
	if err := e.cli.Call(proto.OpDelegReturn, &proto.DelegReturnReq{Owner: "c1", Span: sp}, nil); err != nil {
		t.Fatal(err)
	}
	if e.srv.Store().Delegations("c1") != 0 {
		t.Fatal("delegation not returned")
	}
}

func TestStat(t *testing.T) {
	e := newEnv(t, Config{Daemons: 4})
	e.create(t, meta.RootID, "a", meta.TypeFile)
	var st proto.StatResp
	if err := e.cli.Call(proto.OpStat, nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.Files != 1 {
		t.Fatalf("stat files = %d", st.Files)
	}
	if st.Processed < 1 {
		t.Fatalf("stat processed = %d", st.Processed)
	}
}

func TestCompoundCommitsThroughMDS(t *testing.T) {
	e := newEnv(t, Config{})
	// Three files, one compound commit frame.
	var ops []rpc.SubOp
	for _, name := range []string{"a", "b", "c"} {
		a := e.create(t, meta.RootID, name, meta.TypeFile)
		var lay proto.LayoutResp
		if err := e.cli.Call(proto.OpLayoutGet, &proto.LayoutGetReq{Owner: "c1", File: a.ID, Off: 0, Len: 4096, Flags: meta.LayoutWrite}, &lay); err != nil {
			t.Fatal(err)
		}
		req := proto.CommitReq{Owner: "c1", File: a.ID, Size: 4096, MTime: time.Now().UTC(), Extents: lay.Extents}
		ops = append(ops, rpc.SubOp{Op: proto.OpCommit, Body: wire.Encode(&req)})
	}
	before := e.srv.RPC().Processed()
	results, err := e.cli.Compound(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("sub-op %d failed: %v", i, res.Err)
		}
	}
	if got := e.srv.RPC().Processed() - before; got != 1 {
		t.Fatalf("compound consumed %d RPCs, want 1", got)
	}
	// All three files committed.
	for _, name := range []string{"a", "b", "c"} {
		var look proto.AttrResp
		if err := e.cli.Call(proto.OpLookup, &proto.LookupReq{Parent: meta.RootID, Name: name}, &look); err != nil {
			t.Fatal(err)
		}
		if look.Size != 4096 {
			t.Fatalf("%s size = %d", name, look.Size)
		}
	}
}

func TestLeaseExpiryReclaimsOrphans(t *testing.T) {
	mc := clock.NewManual()
	ags := alloc.NewUniformAGSet(alloc.RoundRobin, 0, 256<<20, 4)
	store := meta.NewStore(meta.Config{AGs: ags, Clock: mc})
	e := newEnv(t, Config{Store: store, Clock: mc, LeaseTimeout: time.Minute})
	var sp proto.SpanMsg
	if err := e.cli.Call(proto.OpDelegate, &proto.DelegateReq{Owner: "c1", Size: 1 << 20}, &sp); err != nil {
		t.Fatal(err)
	}
	if got := e.srv.ExpireLeases(); got != 0 {
		t.Fatalf("premature expiry reclaimed %d", got)
	}
	mc.Advance(2 * time.Minute)
	if got := e.srv.ExpireLeases(); got != 1<<20 {
		t.Fatalf("expiry reclaimed %d, want %d", got, 1<<20)
	}
	if store.Delegations("c1") != 0 {
		t.Fatal("expired delegation survived")
	}
}

func TestHelloNegotiatesProtocolVersion(t *testing.T) {
	e := newEnv(t, Config{})
	var h proto.HelloResp
	if err := e.cli.Call(proto.OpHello, &proto.HelloReq{Owner: "c1", ProtoVersion: proto.ProtoLatest}, &h); err != nil {
		t.Fatal(err)
	}
	if h.ProtoVersion != proto.ProtoLatest {
		t.Fatalf("negotiated v%d, want v%d", h.ProtoVersion, proto.ProtoLatest)
	}
	// An over-eager offer is clamped to what the server speaks.
	if err := e.cli.Call(proto.OpHello, &proto.HelloReq{Owner: "c1", ProtoVersion: 99}, &h); err != nil {
		t.Fatal(err)
	}
	if h.ProtoVersion != proto.ProtoLatest {
		t.Fatalf("offer 99 negotiated v%d, want clamp to v%d", h.ProtoVersion, proto.ProtoLatest)
	}
	// A v1 hello (no version field on the wire) pins the session to v1.
	if err := e.cli.Call(proto.OpHello, &proto.HelloReq{Owner: "old"}, &h); err != nil {
		t.Fatal(err)
	}
	if h.ProtoVersion != proto.ProtoV1 {
		t.Fatalf("version-less hello negotiated v%d, want v%d", h.ProtoVersion, proto.ProtoV1)
	}
}

// TestV1SessionNeverSeesUncommitted is the downgrade regression: whatever
// flag bits a pre-v2 client's frames happen to carry (a v1 `Write bool`
// re-encoded, a corrupted byte), the MDS must strip the uncommitted-
// visibility request for any session that did not negotiate v2 — including
// clients that never said hello at all.
func TestV1SessionNeverSeesUncommitted(t *testing.T) {
	e := newEnv(t, Config{})
	a := e.create(t, meta.RootID, "f", meta.TypeFile)
	// A writer publishes intents for 8 KiB it has not committed.
	var lay proto.LayoutResp
	if err := e.cli.Call(proto.OpLayoutGet, &proto.LayoutGetReq{Owner: "w", File: a.ID, Off: 0, Len: 8192, Flags: meta.LayoutWrite}, &lay); err != nil {
		t.Fatal(err)
	}
	for _, owner := range []string{"", "v1c"} {
		if owner != "" {
			// Session pinned to v1 by a version-less hello.
			if err := e.cli.Call(proto.OpHello, &proto.HelloReq{Owner: owner}, &proto.HelloResp{}); err != nil {
				t.Fatal(err)
			}
		}
		var rlay proto.LayoutResp
		req := &proto.LayoutGetReq{Owner: owner, File: a.ID, Off: 0, Len: 8192, Flags: meta.LayoutWantUncommitted}
		if err := e.cli.Call(proto.OpLayoutGet, req, &rlay); err != nil {
			t.Fatal(err)
		}
		for _, ext := range rlay.Extents {
			if ext.State == meta.StateUncommitted {
				t.Fatalf("owner %q (v1 session) saw uncommitted extent %+v", owner, ext)
			}
		}
		if rlay.Size != 0 {
			t.Fatalf("owner %q (v1 session) saw visible size %d, want committed size 0", owner, rlay.Size)
		}
	}
}

func TestV2SessionSeesUncommittedAndVisibleSize(t *testing.T) {
	e := newEnv(t, Config{})
	a := e.create(t, meta.RootID, "f", meta.TypeFile)
	if err := e.cli.Call(proto.OpHello, &proto.HelloReq{Owner: "r", ProtoVersion: proto.ProtoLatest}, &proto.HelloResp{}); err != nil {
		t.Fatal(err)
	}
	var lay proto.LayoutResp
	if err := e.cli.Call(proto.OpLayoutGet, &proto.LayoutGetReq{Owner: "w", File: a.ID, Off: 0, Len: 8192, Flags: meta.LayoutWrite}, &lay); err != nil {
		t.Fatal(err)
	}
	var rlay proto.LayoutResp
	req := &proto.LayoutGetReq{Owner: "r", File: a.ID, Off: 0, Len: 8192, Flags: meta.LayoutWantUncommitted}
	if err := e.cli.Call(proto.OpLayoutGet, req, &rlay); err != nil {
		t.Fatal(err)
	}
	var uncommitted int64
	for _, ext := range rlay.Extents {
		if ext.State == meta.StateUncommitted {
			uncommitted += ext.Len
		}
	}
	if uncommitted != 8192 {
		t.Fatalf("v2 session saw %d uncommitted bytes, want 8192", uncommitted)
	}
	if rlay.Size != 8192 {
		t.Fatalf("visible size = %d, want 8192 (committed size still 0)", rlay.Size)
	}
	// Without the flag the same session still gets the committed-only view.
	var plain proto.LayoutResp
	if err := e.cli.Call(proto.OpLayoutGet, &proto.LayoutGetReq{Owner: "r", File: a.ID, Off: 0, Len: 8192}, &plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.Extents) != 0 || plain.Size != 0 {
		t.Fatalf("committed-only view leaked intents: %+v", plain)
	}
}

func TestLeaseExpiryRollsBackIntentsAndSession(t *testing.T) {
	mc := clock.NewManual()
	ags := alloc.NewUniformAGSet(alloc.RoundRobin, 0, 256<<20, 4)
	store := meta.NewStore(meta.Config{AGs: ags, Clock: mc})
	e := newEnv(t, Config{Store: store, Clock: mc, LeaseTimeout: time.Minute})
	a := e.create(t, meta.RootID, "f", meta.TypeFile)
	if err := e.cli.Call(proto.OpHello, &proto.HelloReq{Owner: "w", ProtoVersion: proto.ProtoLatest}, &proto.HelloResp{}); err != nil {
		t.Fatal(err)
	}
	var lay proto.LayoutResp
	if err := e.cli.Call(proto.OpLayoutGet, &proto.LayoutGetReq{Owner: "w", File: a.ID, Off: 0, Len: 4096, Flags: meta.LayoutWrite}, &lay); err != nil {
		t.Fatal(err)
	}
	mc.Advance(2 * time.Minute)
	if got := e.srv.ExpireLeases(); got == 0 {
		t.Fatal("expiry reclaimed nothing")
	}
	// The published intents are rolled back: a v2 reader sees no extents.
	if err := e.cli.Call(proto.OpHello, &proto.HelloReq{Owner: "r", ProtoVersion: proto.ProtoLatest}, &proto.HelloResp{}); err != nil {
		t.Fatal(err)
	}
	var rlay proto.LayoutResp
	req := &proto.LayoutGetReq{Owner: "r", File: a.ID, Off: 0, Len: 4096, Flags: meta.LayoutWantUncommitted}
	if err := e.cli.Call(proto.OpLayoutGet, req, &rlay); err != nil {
		t.Fatal(err)
	}
	if len(rlay.Extents) != 0 || rlay.Size != 0 {
		t.Fatalf("rolled-back intents still visible: %+v", rlay)
	}
	// The writer's session version was dropped with its lease: until it says
	// hello again it is treated as v1 and cannot request uncommitted extents.
	var wlay proto.LayoutResp
	wreq := &proto.LayoutGetReq{Owner: "w", File: a.ID, Off: 0, Len: 4096, Flags: meta.LayoutWantUncommitted}
	if err := e.cli.Call(proto.OpLayoutGet, wreq, &wlay); err != nil {
		t.Fatal(err)
	}
	if len(wlay.Extents) != 0 {
		t.Fatalf("expired session still negotiated: %+v", wlay.Extents)
	}
}

func TestUnknownOp(t *testing.T) {
	e := newEnv(t, Config{})
	if _, err := e.cli.CallRaw(9999, nil); err == nil {
		t.Fatal("unknown op succeeded")
	}
}

func TestNilStorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with nil store did not panic")
		}
	}()
	New(Config{})
}

func TestMalformedBodyRejected(t *testing.T) {
	e := newEnv(t, Config{})
	if _, err := e.cli.CallRaw(proto.OpCreate, []byte{1, 2, 3}); err == nil {
		t.Fatal("malformed create accepted")
	}
}

// TestCommitDedupSurvivesReconnect pins the dedup window's keying: it is
// per (owner, commit ID) on the server, not per connection. A client whose
// link dies and is re-routed back to the same shard re-handshakes on a fresh
// connection; retransmitting the commit there must be answered from the
// window — applied once, not twice.
func TestCommitDedupSurvivesReconnect(t *testing.T) {
	e := newEnv(t, Config{})
	a := e.create(t, meta.RootID, "f", meta.TypeFile)
	var lay proto.LayoutResp
	if err := e.cli.Call(proto.OpLayoutGet, &proto.LayoutGetReq{Owner: "c1", File: a.ID, Off: 0, Len: 4096, Flags: meta.LayoutWrite}, &lay); err != nil {
		t.Fatal(err)
	}
	req := &proto.CommitReq{Owner: "c1", File: a.ID, Size: 4096, MTime: time.Unix(7, 0).UTC(), CommitID: 77, Extents: lay.Extents}
	var first proto.CommitResp
	if err := e.cli.Call(proto.OpCommit, req, &first); err != nil {
		t.Fatal(err)
	}
	e.cli.Close() // the link dies; the server keeps the session

	conn, err := e.net.Dial("c1", "mds")
	if err != nil {
		t.Fatal(err)
	}
	cli2 := rpc.NewClient(conn, clock.Real(1))
	defer cli2.Close()
	var h proto.HelloResp
	if err := cli2.Call(proto.OpHello, &proto.HelloReq{Owner: "c1", ProtoVersion: proto.ProtoLatest}, &h); err != nil {
		t.Fatal(err)
	}
	var retry proto.CommitResp
	if err := cli2.Call(proto.OpCommit, req, &retry); err != nil {
		t.Fatalf("retransmission after reconnect: %v", err)
	}
	if retry.Size != first.Size {
		t.Fatalf("deduped reply differs: %d vs %d", retry.Size, first.Size)
	}
	if hits := e.srv.DedupHits(); hits != 1 {
		t.Fatalf("dedup hits = %d, want 1: the window did not survive the reconnect", hits)
	}
}

// TestCommitDedupWindowIsPerShard documents the other half of the dedup
// invariant: each shard keeps its own window, and a commit retransmission
// only ever dedups on the inode's home shard. A mis-routed retransmission to
// a different shard is refused by its store — which does not own the inode —
// never silently absorbed.
func TestCommitDedupWindowIsPerShard(t *testing.T) {
	clk := clock.Real(1)
	stores := make([]*meta.Store, 2)
	for i := range stores {
		stores[i] = meta.NewStore(meta.Config{
			AGs:   alloc.NewUniformAGSet(alloc.RoundRobin, i, 64<<20, 4),
			Clock: clk, Shard: i, ShardCount: 2,
		})
	}
	// A file homed on shard 0 whose dirent lives with the root on shard 1,
	// built with the cross-shard create protocol.
	attr, err := stores[0].CreateDetached(meta.RootID, "f", meta.TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	if meta.ShardOf(attr.ID, 2) != 0 {
		t.Fatalf("minted inode %d not homed on shard 0", attr.ID)
	}
	if err := stores[1].LinkRemote(meta.RootID, "f", attr.ID, meta.TypeFile); err != nil {
		t.Fatal(err)
	}
	if err := stores[0].NSCommit(attr.ID, meta.NSCreate); err != nil {
		t.Fatal(err)
	}

	n := netsim.NewNetwork(clk)
	n.AddHost("c1", netsim.Instant())
	srvs := make([]*Server, 2)
	clis := make([]*rpc.Client, 2)
	for i := range srvs {
		host := "mds" + string(rune('0'+i))
		n.AddHost(host, netsim.Instant())
		srvs[i] = New(Config{Store: stores[i], Clock: clk, ShardIndex: uint32(i), ShardCount: 2})
		l, err := n.Listen(host)
		if err != nil {
			t.Fatal(err)
		}
		go srvs[i].Serve(l)
		conn, err := n.Dial("c1", host)
		if err != nil {
			t.Fatal(err)
		}
		clis[i] = rpc.NewClient(conn, clk)
		srv := srvs[i]
		t.Cleanup(func() { srv.Close() })
	}

	var lay proto.LayoutResp
	if err := clis[0].Call(proto.OpLayoutGet, &proto.LayoutGetReq{Owner: "c1", File: attr.ID, Off: 0, Len: 4096, Flags: meta.LayoutWrite}, &lay); err != nil {
		t.Fatal(err)
	}
	req := &proto.CommitReq{Owner: "c1", File: attr.ID, Size: 4096, MTime: time.Unix(7, 0).UTC(), CommitID: 99, Extents: lay.Extents}
	var resp proto.CommitResp
	if err := clis[0].Call(proto.OpCommit, req, &resp); err != nil {
		t.Fatal(err)
	}
	if err := clis[0].Call(proto.OpCommit, req, &resp); err != nil {
		t.Fatalf("home-shard retransmission: %v", err)
	}
	if hits := srvs[0].DedupHits(); hits != 1 {
		t.Fatalf("home shard dedup hits = %d, want 1", hits)
	}
	// The same retransmission aimed at the wrong shard must fail loudly:
	// shard 1 never recorded the commit and does not own the inode.
	var wrong proto.CommitResp
	err = clis[1].Call(proto.OpCommit, req, &wrong)
	var re *rpc.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("mis-routed retransmission: got err %v, want a remote refusal", err)
	}
	if hits := srvs[1].DedupHits(); hits != 0 {
		t.Fatalf("wrong shard answered from a dedup window it never populated (hits=%d)", hits)
	}
}
