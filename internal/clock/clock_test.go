package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealScaleValidation(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Real(%v) did not panic", s)
				}
			}()
			Real(s)
		}()
	}
	if c := Real(1); c == nil {
		t.Fatal("Real(1) returned nil")
	}
}

func TestRealSleepScales(t *testing.T) {
	c := Real(0.01) // 100x compression
	start := time.Now()
	c.Sleep(500 * time.Millisecond) // should take ~5ms wall
	wall := time.Since(start)
	if wall > 200*time.Millisecond {
		t.Fatalf("scaled sleep took %v wall, want ~5ms", wall)
	}
}

func TestRealNowAdvances(t *testing.T) {
	c := Real(0.01)
	t0 := c.Now()
	time.Sleep(2 * time.Millisecond) // 200ms virtual
	t1 := c.Now()
	if d := t1.Sub(t0); d < 50*time.Millisecond {
		t.Fatalf("virtual time advanced only %v, want >=50ms", d)
	}
}

func TestRealSleepNonPositive(t *testing.T) {
	c := Real(1)
	start := time.Now()
	c.Sleep(0)
	c.Sleep(-time.Hour)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("non-positive sleep blocked")
	}
}

func TestRealAfterImmediate(t *testing.T) {
	c := Real(1)
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestRealSince(t *testing.T) {
	c := Real(0.01)
	t0 := c.Now()
	time.Sleep(time.Millisecond)
	if c.Since(t0) <= 0 {
		t.Fatal("Since returned non-positive for past time")
	}
}

func TestManualNowStartsAtEpoch(t *testing.T) {
	m := NewManual()
	if !m.Now().Equal(Epoch) {
		t.Fatalf("manual clock starts at %v, want %v", m.Now(), Epoch)
	}
}

func TestManualAdvance(t *testing.T) {
	m := NewManual()
	m.Advance(3 * time.Second)
	if got := m.Since(Epoch); got != 3*time.Second {
		t.Fatalf("Since(Epoch) = %v, want 3s", got)
	}
}

func TestManualSleepWakesAtDeadline(t *testing.T) {
	m := NewManual()
	done := make(chan struct{})
	go func() {
		m.Sleep(10 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register.
	for m.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	m.Advance(9 * time.Second)
	select {
	case <-done:
		t.Fatal("sleeper woke before deadline")
	case <-time.After(10 * time.Millisecond):
	}
	m.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleeper did not wake at deadline")
	}
}

func TestManualAfterZero(t *testing.T) {
	m := NewManual()
	select {
	case ts := <-m.After(0):
		if !ts.Equal(Epoch) {
			t.Fatalf("After(0) delivered %v, want %v", ts, Epoch)
		}
	default:
		t.Fatal("After(0) did not fire synchronously")
	}
}

func TestManualManySleepers(t *testing.T) {
	m := NewManual()
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		d := time.Duration(i+1) * time.Second
		go func() {
			defer wg.Done()
			m.Sleep(d)
		}()
	}
	for m.Waiters() < n {
		time.Sleep(time.Millisecond)
	}
	m.Advance(n * time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("sleepers stuck; %d still waiting", m.Waiters())
	}
}

func TestManualNextDeadline(t *testing.T) {
	m := NewManual()
	if _, ok := m.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a waiter on an idle clock")
	}
	go m.Sleep(5 * time.Second)
	go m.Sleep(2 * time.Second)
	for m.Waiters() < 2 {
		time.Sleep(time.Millisecond)
	}
	dl, ok := m.NextDeadline()
	if !ok || !dl.Equal(Epoch.Add(2*time.Second)) {
		t.Fatalf("NextDeadline = %v,%v; want %v,true", dl, ok, Epoch.Add(2*time.Second))
	}
	if !m.AdvanceToNext() {
		t.Fatal("AdvanceToNext found nothing")
	}
	if got := m.Now(); !got.Equal(Epoch.Add(2 * time.Second)) {
		t.Fatalf("after AdvanceToNext now = %v", got)
	}
}

func TestManualNegativeAdvancePanics(t *testing.T) {
	m := NewManual()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	m.Advance(-time.Second)
}

func TestManualAdvanceToNextEmpty(t *testing.T) {
	m := NewManual()
	if m.AdvanceToNext() {
		t.Fatal("AdvanceToNext returned true on idle clock")
	}
}
