// Package blockdev simulates the shared fiber-channel disk array of the
// Redbud cluster: block devices with a positional disk-head service model
// (seek + rotational + transfer time), an elevator I/O scheduler that merges
// physically contiguous requests, exact virtual-time accounting, durability
// tracking for the ordered-write invariant, and a blktrace-style dispatch
// hook used to regenerate the paper's Figures 4 and 5.
package blockdev

import (
	"time"
)

// DiskModel captures the service-time parameters of one rotating disk. All
// durations are virtual time (see internal/clock).
type DiskModel struct {
	// SeekBase is the fixed positioning cost paid whenever the head must
	// move (i.e. the request is not physically sequential to the last one).
	SeekBase time.Duration
	// SeekPerGB is the distance-proportional component of a seek, per
	// gigabyte of LBA distance, capped by SeekMax.
	SeekPerGB time.Duration
	// SeekMax caps SeekBase + distance cost.
	SeekMax time.Duration
	// RotLatency is the average rotational delay added to every seek.
	RotLatency time.Duration
	// BandwidthMBps is the media transfer rate in MB/s (1 MB = 1e6 bytes).
	BandwidthMBps float64
	// PerRequest is the controller/DMA overhead paid once per dispatched
	// request, independent of size. Merging k requests into one dispatch
	// saves (k-1) of these.
	PerRequest time.Duration
}

// DefaultHDD models a 7200 RPM enterprise disk of the paper's era (2012):
// ~4 ms average seek, ~4 ms rotational half-turn, ~120 MB/s media rate.
func DefaultHDD() DiskModel {
	return DiskModel{
		SeekBase:      1500 * time.Microsecond,
		SeekPerGB:     25 * time.Microsecond,
		SeekMax:       9 * time.Millisecond,
		RotLatency:    4170 * time.Microsecond, // half of 8.33 ms/rev
		BandwidthMBps: 120,
		PerRequest:    100 * time.Microsecond,
	}
}

// FastHDD is a lighter model for functional tests that still want nonzero,
// ordered latencies without slowing the suite.
func FastHDD() DiskModel {
	return DiskModel{
		SeekBase:      20 * time.Microsecond,
		SeekPerGB:     1 * time.Microsecond,
		SeekMax:       100 * time.Microsecond,
		RotLatency:    10 * time.Microsecond,
		BandwidthMBps: 4000,
		PerRequest:    2 * time.Microsecond,
	}
}

// ZeroLatency makes every request complete in zero virtual time; useful for
// pure functional tests.
func ZeroLatency() DiskModel {
	return DiskModel{BandwidthMBps: 0} // 0 bandwidth means free transfer
}

// TransferTime returns the media transfer time for n bytes.
func (m DiskModel) TransferTime(n int64) time.Duration {
	if m.BandwidthMBps <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / (m.BandwidthMBps * 1e6) * float64(time.Second))
}

// SeekTime returns the positioning cost to move the head from to the given
// offset. A zero distance is free (sequential access).
func (m DiskModel) SeekTime(head, offset int64) time.Duration {
	if head == offset {
		return 0
	}
	dist := head - offset
	if dist < 0 {
		dist = -dist
	}
	seek := m.SeekBase + time.Duration(float64(m.SeekPerGB)*float64(dist)/1e9)
	if m.SeekMax > 0 && seek > m.SeekMax {
		seek = m.SeekMax
	}
	return seek + m.RotLatency
}

// ServiceTime returns the total service time for one dispatched request of n
// bytes at offset, given the current head position.
func (m DiskModel) ServiceTime(head, offset, n int64) time.Duration {
	return m.PerRequest + m.SeekTime(head, offset) + m.TransferTime(n)
}
