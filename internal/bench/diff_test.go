package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func mdsJSON(t *testing.T, rep MDSReport) []byte {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func baselineMDS() MDSReport {
	return MDSReport{
		Figure:  "7",
		Clients: 3,
		Scale:   0.005,
		Size:    0.1,
		Cells: []Fig7Cell{
			{Daemons: 1, Degree: 1, PerClient: 1.0, OpsPerSec: 40},
			{Daemons: 8, Degree: 3, PerClient: 2.5, OpsPerSec: 100},
			{Daemons: 16, Degree: 6, PerClient: 3.0, OpsPerSec: 120},
		},
	}
}

// TestCompareMDSSyntheticRegression is the proof the gate works: a 50% ops/sec
// drop in one cell must be reported, and the report must name the cell.
func TestCompareMDSSyntheticRegression(t *testing.T) {
	base := baselineMDS()
	cur := baselineMDS()
	cur.Cells[1].OpsPerSec *= 0.5
	regs, err := CompareReports(mdsJSON(t, base), mdsJSON(t, cur), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly one", regs)
	}
	if !strings.Contains(regs[0], "daemons=8 degree=3") || !strings.Contains(regs[0], "ops/sec") {
		t.Fatalf("regression does not name the failing cell and metric: %q", regs[0])
	}
}

func TestCompareMDSWithinTolerancePasses(t *testing.T) {
	base := baselineMDS()
	cur := baselineMDS()
	for i := range cur.Cells {
		cur.Cells[i].OpsPerSec *= 0.95 // 5% noise, inside the 10% band
		cur.Cells[i].PerClient *= 1.02 // improvements never regress
	}
	regs, err := CompareReports(mdsJSON(t, base), mdsJSON(t, cur), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}
}

func TestCompareMDSMissingCell(t *testing.T) {
	base := baselineMDS()
	cur := baselineMDS()
	cur.Cells = cur.Cells[:2]
	regs, err := CompareReports(mdsJSON(t, base), mdsJSON(t, cur), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("dropped cell not flagged: %v", regs)
	}
}

func TestCompareRejectsMismatchedRuns(t *testing.T) {
	base := baselineMDS()
	cur := baselineMDS()
	cur.Clients = 7
	if _, err := CompareReports(mdsJSON(t, base), mdsJSON(t, cur), 0.10); err == nil {
		t.Fatal("comparing runs with different client counts did not error")
	}

	obs, err := json.Marshal(ObsJSONReport{Figure: "obs", Clients: 3, Size: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareReports(mdsJSON(t, base), obs, 0.10); err == nil {
		t.Fatal("comparing figure 7 against obs did not error")
	}
}

func TestCompareObsRegression(t *testing.T) {
	mk := func(mean, overhead float64) []byte {
		data, err := json.Marshal(ObsJSONReport{
			Figure: "obs", Clients: 3, Scale: 0.005, Size: 0.1,
			MeanE2EUS: mean, OverheadPct: overhead,
		})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	// Latency regression beyond the band is flagged.
	regs, err := CompareReports(mk(1000, 2.0), mk(1500, 2.0), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "e2e") {
		t.Fatalf("latency regression not flagged: %v", regs)
	}
	// Overhead noise under the 5pp absolute floor is not.
	regs, err = CompareReports(mk(1000, 0.1), mk(1000, 4.9), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("sub-floor overhead noise flagged: %v", regs)
	}
	// A real overhead jump is.
	regs, err = CompareReports(mk(1000, 1.0), mk(1000, 12.0), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "overhead") {
		t.Fatalf("overhead regression not flagged: %v", regs)
	}
}

func baselineVisibility() VisibilityReport {
	return VisibilityReport{
		Figure:  "visibility",
		Clients: 3,
		Scale:   0.005,
		Size:    0.1,
		Rows: []VisibilityRow{
			{Visibility: false, Blocks: 16, ConflictMeanUS: 5000, ConflictMaxUS: 9000, VarmailOpsPerSec: 800},
			{Visibility: true, Blocks: 16, ConflictMeanUS: 900, ConflictMaxUS: 2000, VarmailOpsPerSec: 790},
		},
	}
}

func visJSON(t *testing.T, rep VisibilityReport) []byte {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCompareVisibilityRegression(t *testing.T) {
	base := baselineVisibility()
	cur := baselineVisibility()
	cur.Rows[1].ConflictMeanUS *= 2 // speedup collapses to 2.8x, below the 4x floor
	cur.Rows[0].VarmailOpsPerSec *= 0.5
	regs, err := CompareReports(visJSON(t, base), visJSON(t, cur), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want two", regs)
	}
	if !strings.Contains(regs[0], "visibility=off") || !strings.Contains(regs[0], "varmail") {
		t.Fatalf("first regression does not name row and metric: %q", regs[0])
	}
	if !strings.Contains(regs[1], "conflict-read speedup") {
		t.Fatalf("second regression is not the speedup gate: %q", regs[1])
	}
}

func TestCompareVisibilityWithinTolerancePasses(t *testing.T) {
	base := baselineVisibility()
	cur := baselineVisibility()
	// Conflict-read stalls swing with queue depth: a 1.3x drift on both rows
	// must not trip the gate as long as the separation holds.
	cur.Rows[0].ConflictMeanUS *= 1.3
	cur.Rows[1].ConflictMeanUS *= 1.3
	cur.Rows[0].VarmailOpsPerSec *= 0.9
	regs, err := CompareReports(visJSON(t, base), visJSON(t, cur), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func baselineShards() ShardsReport {
	return ShardsReport{
		Figure:  "shards",
		Clients: 3,
		Scale:   0.005,
		Size:    0.1,
		Rows: []ShardsRow{
			{Shards: 1, Commits: 1200, CommitsPerSec: 100, MeanUS: 1800000, Speedup: 1},
			{Shards: 2, Commits: 1200, CommitsPerSec: 210, MeanUS: 830000, Speedup: 2.1},
			{Shards: 4, Commits: 1200, CommitsPerSec: 450, MeanUS: 380000, Speedup: 4.5},
			{Shards: 8, Commits: 1200, CommitsPerSec: 880, MeanUS: 200000, Speedup: 8.8},
		},
	}
}

func shardsJSON(t *testing.T, rep ShardsReport) []byte {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCompareShardsRegression(t *testing.T) {
	base := baselineShards()
	cur := baselineShards()
	cur.Rows[3].CommitsPerSec *= 0.5 // 8-shard row falls out of the band
	regs, err := CompareReports(shardsJSON(t, base), shardsJSON(t, cur), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "shards=8") {
		t.Fatalf("8-shard throughput drop not flagged: %v", regs)
	}
}

// TestCompareShardsScalingFloor pins the report-internal invariant: a run
// whose 4-shard throughput collapses toward the single-shard level — the
// signature of a sharding path that re-serialized on a shared resource — is
// flagged even when a shifted baseline would band it as acceptable.
func TestCompareShardsScalingFloor(t *testing.T) {
	base := baselineShards()
	for i := range base.Rows {
		base.Rows[i].CommitsPerSec = 100 // baseline itself never scaled
	}
	cur := baselineShards()
	for i := range cur.Rows {
		cur.Rows[i].CommitsPerSec = 120 // above the bands everywhere...
	}
	regs, err := CompareReports(shardsJSON(t, base), shardsJSON(t, cur), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "sharding speedup") {
		t.Fatalf("collapsed 4-shard scaling not flagged: %v", regs)
	}
}

func TestCompareShardsWithinTolerancePasses(t *testing.T) {
	base := baselineShards()
	cur := baselineShards()
	for i := range cur.Rows {
		cur.Rows[i].CommitsPerSec *= 0.85 // 15% noise, inside the 25% band
	}
	regs, err := CompareReports(shardsJSON(t, base), shardsJSON(t, cur), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}
}

// TestCompareVisibilityCrossCheck pins the report-internal invariant: a run
// where visibility-on latency climbs to the committed-only level is flagged
// regardless of how the baseline rows were positioned.
func TestCompareVisibilityCrossCheck(t *testing.T) {
	base := baselineVisibility()
	base.Rows[1].ConflictMeanUS = 4500 // tight baseline gap
	cur := baselineVisibility()
	cur.Rows[1].ConflictMeanUS = 5500 // on > off: the knob stopped helping
	regs, err := CompareReports(visJSON(t, base), visJSON(t, cur), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range regs {
		if strings.Contains(r, "conflict-read speedup") {
			found = true
		}
	}
	if !found {
		t.Fatalf("speedup gate missing from regressions: %v", regs)
	}
}
