package workload

import (
	"fmt"
	"time"
)

// Scale shrinks a spec's op counts for fast test runs (factor in (0, 1]).
func (s Spec) Scale(factor float64) Spec {
	if factor <= 0 || factor > 1 {
		return s
	}
	scale := func(n int) int {
		v := int(float64(n) * factor)
		if v < 1 {
			v = 1
		}
		return v
	}
	s.OpsPerThread = scale(s.OpsPerThread)
	s.PrefillPerThread = scale(s.PrefillPerThread)
	return s
}

// Fileserver emulates Filebench's fileserver personality: a host serving
// whole files — creates, whole-file reads, appends, deletes and stats over a
// ~128 KiB mean file size.
func Fileserver(seed int64) Spec {
	return Spec{
		Name:             "fileserver",
		Threads:          8,
		OpsPerThread:     120,
		PrefillPerThread: 20,
		FileSize:         SizeDist{Mean: 128 << 10},
		AppendSize:       16 << 10,
		Mix: []OpWeight{
			{OpCreateWrite, 30},
			{OpRead, 30},
			{OpAppend, 20},
			{OpDelete, 10},
			{OpStat, 10},
		},
		Think: 200 * time.Microsecond,
		Dirs:  8,
		Seed:  seed,
	}
}

// Varmail emulates Filebench's varmail personality: a mail server with
// 16 KiB messages, fsync after every delivery (create/append), balanced
// with whole-file reads and deletes.
func Varmail(seed int64) Spec {
	return Spec{
		Name:             "varmail",
		Threads:          8,
		OpsPerThread:     150,
		PrefillPerThread: 30,
		FileSize:         SizeDist{Mean: 16 << 10},
		AppendSize:       16 << 10,
		Mix: []OpWeight{
			{OpCreateWrite, 25},
			{OpRead, 25},
			{OpAppend, 25},
			{OpDelete, 25},
		},
		FsyncWrites: true,
		Think:       200 * time.Microsecond,
		Dirs:        4,
		Seed:        seed,
	}
}

// Webproxy emulates Filebench's webproxy personality: a caching proxy —
// create-once, read-many small files with occasional eviction deletes.
func Webproxy(seed int64) Spec {
	return Spec{
		Name:             "webproxy",
		Threads:          8,
		OpsPerThread:     150,
		PrefillPerThread: 30,
		FileSize:         SizeDist{Mean: 16 << 10},
		AppendSize:       16 << 10,
		Mix: []OpWeight{
			{OpCreateWrite, 15},
			{OpRead, 75},
			{OpDelete, 5},
			{OpStat, 5},
		},
		Think: 200 * time.Microsecond,
		Dirs:  8,
		Seed:  seed,
	}
}

// Xcdn emulates the paper's CDN benchmark: edge servers ingesting objects of
// one fixed size, scattered over a wide namespace, with occasional reads —
// the workload where delayed commit shines (2.6x on 32 KiB objects).
func Xcdn(fileSize int64, seed int64) Spec {
	ops := 200
	if fileSize >= 1<<20 {
		ops = 40 // keep total bytes comparable across the size sweep
	}
	return Spec{
		Name:             fmt.Sprintf("xcdn-%s", sizeName(fileSize)),
		Threads:          8,
		OpsPerThread:     ops,
		PrefillPerThread: 10,
		FileSize:         SizeDist{Mean: fileSize, Fixed: true},
		Mix: []OpWeight{
			{OpCreateWrite, 80},
			{OpRead, 20},
		},
		Think: 100 * time.Microsecond,
		Dirs:  32, // "randomly scattered over the whole namespace"
		Seed:  seed,
	}
}

func sizeName(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
