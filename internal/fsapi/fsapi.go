// Package fsapi defines the file-system interface shared by every system
// under evaluation — Redbud (sync or delayed commit), the NFS3-like
// baseline, and the PVFS2-like baseline — so a single workload engine
// (internal/workload) can drive them interchangeably, exactly as the paper
// runs Filebench/xcdn/NPB against four configurations.
package fsapi

import (
	"errors"
	"time"
)

// Errors shared across implementations.
var (
	ErrNotExist = errors.New("fsapi: file does not exist")
	ErrExist    = errors.New("fsapi: file already exists")
	ErrIsDir    = errors.New("fsapi: is a directory")
	ErrClosed   = errors.New("fsapi: file system closed")
)

// Info describes a file or directory.
type Info struct {
	Name  string
	Size  int64
	Dir   bool
	MTime time.Time
}

// File is an open file handle.
type File interface {
	// WriteAt writes p at offset off, extending the file as needed.
	WriteAt(p []byte, off int64) (int, error)
	// ReadAt reads len(p) bytes at off; short reads at EOF return the
	// count actually read with a nil error (files are sparse; holes read
	// as zeros up to the file size).
	ReadAt(p []byte, off int64) (int, error)
	// Append writes p at the current end of file and returns the offset
	// the data landed at.
	Append(p []byte) (int64, error)
	// Size returns the file size as seen by this handle (including
	// locally buffered writes).
	Size() int64
	// Sync forces the file durable: data flushed and metadata committed.
	Sync() error
	// Close releases the handle. Under delayed commit this does NOT block
	// on pending commits — the measured close-latency win of §V-C.
	Close() error
}

// CollectiveBlock is one rank's contribution to an MPI-IO collective write.
type CollectiveBlock struct {
	Off  int64
	Data []byte
}

// CollectiveWriter is implemented by files supporting two-phase collective
// I/O (the PVFS2 baseline); the BT-IO workload uses it when present.
type CollectiveWriter interface {
	WriteCollective(blocks []CollectiveBlock) error
}

// FileSystem is a mounted client view.
type FileSystem interface {
	// Create makes a new regular file. Parent directories must exist.
	Create(path string) (File, error)
	// Open opens an existing regular file.
	Open(path string) (File, error)
	// Mkdir creates a directory. Parent directories must exist.
	Mkdir(path string) error
	// Remove unlinks a file or empty directory.
	Remove(path string) error
	// Rename moves a file or directory to a new path whose parent exists;
	// the destination must not already exist.
	Rename(oldPath, newPath string) error
	// Stat describes a path.
	Stat(path string) (Info, error)
	// ReadDir lists a directory.
	ReadDir(path string) ([]Info, error)
	// Close unmounts: flushes dirty state, drains pending commits, and
	// releases resources.
	Close() error
}

// SplitPath splits a slash-separated absolute path into components,
// ignoring empty segments. "/" yields nil.
func SplitPath(path string) []string {
	var parts []string
	start := -1
	for i := 0; i <= len(path); i++ {
		if i == len(path) || path[i] == '/' {
			if start >= 0 {
				parts = append(parts, path[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return parts
}
