package obs

import (
	"testing"
	"time"
)

var t0 = time.Unix(1000, 0).UTC()

func at(us int64) time.Time { return t0.Add(time.Duration(us) * time.Microsecond) }

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	if got := tr.Cap(); got != 4 {
		t.Fatalf("Cap = %d, want 4", got)
	}
	for i := 0; i < 6; i++ {
		tr.Record("trk", "s", uint64(i+1), at(int64(i)), at(int64(i)+1))
	}
	if tr.Len() != 4 || tr.Total() != 6 || tr.Dropped() != 2 {
		t.Fatalf("Len/Total/Dropped = %d/%d/%d, want 4/6/2", tr.Len(), tr.Total(), tr.Dropped())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("Spans len = %d, want 4", len(spans))
	}
	// Oldest first: commits 3,4,5,6 survive.
	for i, s := range spans {
		if want := uint64(i + 3); s.CommitID != want {
			t.Errorf("span %d commit = %d, want %d", i, s.CommitID, want)
		}
	}
}

func TestTracerDefaultCap(t *testing.T) {
	if got := NewTracer(0).Cap(); got != DefaultTraceCap {
		t.Fatalf("Cap = %d, want DefaultTraceCap %d", got, DefaultTraceCap)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	tr.Record("trk", "s", 1, at(0), at(1)) // must not panic
	tr.Reset()
	if tr.Spans() != nil || tr.Len() != 0 || tr.Cap() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer accessors not zero")
	}
}

func TestRecordClampsReversedSpan(t *testing.T) {
	tr := NewTracer(4)
	tr.Record("trk", "s", 1, at(10), at(5))
	s := tr.Spans()[0]
	if s.Duration() != 0 || !s.End.Equal(s.Start) {
		t.Fatalf("reversed span not clamped: %+v", s)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Record("trk", "s", 1, at(0), at(1))
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || len(tr.Spans()) != 0 {
		t.Fatal("Reset left state behind")
	}
	tr.Record("trk", "s", 1, at(0), at(1))
	if tr.Len() != 1 || tr.Total() != 1 || tr.Dropped() != 0 {
		t.Fatal("tracer unusable after Reset")
	}
}

// TestTraceDisabledZeroAllocs pins the acceptance criterion: the disabled
// (nil-tracer) path must not allocate.
func TestTraceDisabledZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record("client-0/commit", SpanCommitRPC, 42, t0, t0)
	})
	if allocs != 0 {
		t.Fatalf("disabled Record allocates %v per op, want 0", allocs)
	}
}

func TestNewSpanID(t *testing.T) {
	a := NewSpanID(42, SpanCommitRPC)
	if a == 0 {
		t.Fatal("NewSpanID returned the reserved zero ID")
	}
	if a != NewSpanID(42, SpanCommitRPC) {
		t.Fatal("NewSpanID is not deterministic for a fixed (parent, role)")
	}
	if a == NewSpanID(43, SpanCommitRPC) {
		t.Fatal("NewSpanID ignores the parent ID")
	}
	if a == NewSpanID(42, SpanMDSCommit) {
		t.Fatal("NewSpanID ignores the role")
	}
	// The commit chain must stay collision-free per trace: the same role
	// under distinct parents yields distinct IDs across a realistic range.
	seen := make(map[uint64]uint64, 4096)
	for p := uint64(1); p <= 4096; p++ {
		id := NewSpanID(p, SpanMDSCommit)
		if prev, dup := seen[id]; dup {
			t.Fatalf("NewSpanID collision: parents %d and %d both map to %#x", prev, p, id)
		}
		seen[id] = p
	}
}

func TestNewSpanIDZeroAlloc(t *testing.T) {
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = NewSpanID(42, SpanMDSCommit)
	}); allocs != 0 {
		t.Fatalf("NewSpanID allocates %v per op, want 0", allocs)
	}
}

// TestRecordSpanDisabledZeroAllocs pins the linked variant of the acceptance
// criterion: building and recording a fully-linked span against a nil tracer
// must not allocate — the trace-context fields ride in registers.
func TestRecordSpanDisabledZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.RecordSpan(Span{
			Track: "mds", Name: SpanMDSCommit, CommitID: 42,
			TraceID: 42, SpanID: NewSpanID(42, SpanMDSCommit), Parent: 7,
			Start: t0, End: t0,
		})
	})
	if allocs != 0 {
		t.Fatalf("disabled RecordSpan allocates %v per op, want 0", allocs)
	}
}

// BenchmarkTraceDisabled measures the cost instrumented code pays with
// tracing off: one nil check. Must report 0 allocs/op.
func BenchmarkTraceDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record("client-0/commit", SpanCommitRPC, uint64(i), t0, t0)
	}
}

// BenchmarkTraceDisabledLinked is the trace-context-enabled-but-off hot
// path: deriving the deterministic span ID and recording a fully-linked span
// against a nil tracer. Must report 0 allocs/op — commit instrumentation
// pays this on every request when -debug is absent.
func BenchmarkTraceDisabledLinked(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := uint64(i) | 1
		tr.RecordSpan(Span{
			Track: "mds", Name: SpanMDSCommit, CommitID: id,
			TraceID: id, SpanID: NewSpanID(id, SpanMDSCommit), Parent: id,
			Start: t0, End: t0,
		})
	}
}

// BenchmarkTraceEnabled measures the bounded-ring recording cost.
func BenchmarkTraceEnabled(b *testing.B) {
	tr := NewTracer(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record("client-0/commit", SpanCommitRPC, uint64(i), t0, t0)
	}
}
