// Package rpc mirrors the client surface of redbud's internal/rpc for
// analyzer fixtures.
package rpc

import "proto"

// Client is a stand-in for the RPC client; Call/CallRaw/Compound block on a
// network round trip.
type Client struct{}

func (c *Client) Call(op proto.Op, req, resp any) error { return nil }

func (c *Client) CallRaw(op proto.Op, payload []byte) ([]byte, error) { return nil, nil }

func (c *Client) Compound(subs []SubOp) error { return nil }

// SubOp is one operation of a compound RPC.
type SubOp struct {
	Op      proto.Op
	Payload []byte
}
