package agg

import (
	"testing"
	"time"

	"redbud/internal/obs"
)

var slot0 = time.Unix(1000, 0).UTC()

func gaugeSnap(name string, v int64) obs.Snapshot {
	return obs.Snapshot{Metrics: []obs.MetricValue{{Name: name, Kind: obs.KindGauge, Value: v}}}
}

func counterSnap(name string, v int64) obs.Snapshot {
	return obs.Snapshot{Metrics: []obs.MetricValue{{Name: name, Kind: obs.KindCounter, Value: v}}}
}

func state(t *testing.T, alerts []Alert, rule string) Alert {
	t.Helper()
	for _, a := range alerts {
		if a.Rule.Name == rule {
			return a
		}
	}
	t.Fatalf("rule %q not in %+v", rule, alerts)
	return Alert{}
}

func TestThresholdFiresImmediately(t *testing.T) {
	e := NewEngine([]Rule{{Name: "backlog", Metric: "redbud_q", Field: FieldValue, Op: GT, Threshold: 10}})
	if a := state(t, e.Evaluate(slot0, gaugeSnap("redbud_q", 5)), "backlog"); a.State != StateInactive {
		t.Fatalf("below threshold: %v", a.State)
	}
	a := state(t, e.Evaluate(slot0.Add(time.Second), gaugeSnap("redbud_q", 15)), "backlog")
	if a.State != StateFiring || a.Value != 15 {
		t.Fatalf("breach with For=0: state %v value %g, want firing 15", a.State, a.Value)
	}
	if a = state(t, e.Evaluate(slot0.Add(2*time.Second), gaugeSnap("redbud_q", 5)), "backlog"); a.State != StateInactive {
		t.Fatalf("recovery: %v", a.State)
	}
	ev := e.Events()
	if len(ev) != 2 || ev[0].To != "firing" || ev[1].To != "inactive" {
		t.Fatalf("transition log: %+v", ev)
	}
}

func TestForHoldsAlertPending(t *testing.T) {
	e := NewEngine([]Rule{{Name: "slow", Metric: "redbud_q", Field: FieldValue, Op: GT, Threshold: 10, For: 2 * time.Second}})
	breach := gaugeSnap("redbud_q", 99)
	if a := state(t, e.Evaluate(slot0, breach), "slow"); a.State != StatePending {
		t.Fatalf("first breach: %v, want pending", a.State)
	}
	if a := state(t, e.Evaluate(slot0.Add(time.Second), breach), "slow"); a.State != StatePending {
		t.Fatalf("1s into For: %v, want still pending", a.State)
	}
	if a := state(t, e.Evaluate(slot0.Add(2*time.Second), breach), "slow"); a.State != StateFiring {
		t.Fatalf("For elapsed: %v, want firing", a.State)
	}
	// A dip before For elapses resets the machine entirely.
	e2 := NewEngine([]Rule{{Name: "slow", Metric: "redbud_q", Field: FieldValue, Op: GT, Threshold: 10, For: 2 * time.Second}})
	e2.Evaluate(slot0, breach)
	e2.Evaluate(slot0.Add(time.Second), gaugeSnap("redbud_q", 1))
	if a := state(t, e2.Evaluate(slot0.Add(3*time.Second), breach), "slow"); a.State != StatePending {
		t.Fatalf("breach after a dip: %v, want pending again (Since reset)", a.State)
	}
}

func TestBurnRateWindow(t *testing.T) {
	e := NewEngine([]Rule{{Name: "burn", Metric: "redbud_errs_total", Field: FieldRate, Op: GT, Threshold: 1, Window: 10 * time.Second}})
	// A cold engine has one sample and no horizon: rate 0, never firing.
	if a := state(t, e.Evaluate(slot0, counterSnap("redbud_errs_total", 1000)), "burn"); a.State != StateInactive || a.Value != 0 {
		t.Fatalf("cold evaluation: state %v value %g, want inactive 0", a.State, a.Value)
	}
	// +100 over 5s = 20/s: breach.
	a := state(t, e.Evaluate(slot0.Add(5*time.Second), counterSnap("redbud_errs_total", 1100)), "burn")
	if a.State != StateFiring || a.Value != 20 {
		t.Fatalf("hot window: state %v value %g, want firing 20", a.State, a.Value)
	}
	// Flat counter long past the window: the rate decays to 0 and the alert
	// clears — stale breach samples age out.
	a = state(t, e.Evaluate(slot0.Add(30*time.Second), counterSnap("redbud_errs_total", 1100)), "burn")
	a = state(t, e.Evaluate(slot0.Add(45*time.Second), counterSnap("redbud_errs_total", 1100)), "burn")
	if a.State != StateInactive || a.Value != 0 {
		t.Fatalf("flat counter: state %v value %g, want inactive 0", a.State, a.Value)
	}
}

func TestHistogramFieldsTakeWorstSeries(t *testing.T) {
	snap := obs.Snapshot{Metrics: []obs.MetricValue{
		{Name: "redbud_lat", Kind: obs.KindHistogram, Labels: `shard="mds0"`, Hist: &obs.HistValue{Count: 10, P99: 0.01, Mean: 0.002}},
		{Name: "redbud_lat", Kind: obs.KindHistogram, Labels: `shard="mds1"`, Hist: &obs.HistValue{Count: 10, P99: 0.2, Mean: 0.05}},
	}}
	e := NewEngine([]Rule{
		{Name: "p99", Metric: "redbud_lat", Field: FieldP99, Op: GT, Threshold: 0.1},
		{Name: "mean", Metric: "redbud_lat", Field: FieldMean, Op: GT, Threshold: 0.1},
	})
	alerts := e.Evaluate(slot0, snap)
	if a := state(t, alerts, "p99"); a.State != StateFiring || a.Value != 0.2 {
		t.Fatalf("p99 rule: state %v value %g, want firing on the worst series (0.2)", a.State, a.Value)
	}
	if a := state(t, alerts, "mean"); a.State != StateInactive || a.Value != 0.05 {
		t.Fatalf("mean rule: state %v value %g, want inactive at 0.05", a.State, a.Value)
	}
}

func TestMissingMetricNeverBreaches(t *testing.T) {
	e := NewEngine([]Rule{
		{Name: "v", Metric: "redbud_nope", Field: FieldValue, Op: GT, Threshold: 1},
		{Name: "r", Metric: "redbud_nope", Field: FieldRate, Op: GT, Threshold: 1, Window: time.Second},
		{Name: "p", Metric: "redbud_nope", Field: FieldP99, Op: GT, Threshold: 0.001},
	})
	e.Evaluate(slot0, obs.Snapshot{})
	for _, a := range e.Evaluate(slot0.Add(time.Second), obs.Snapshot{}) {
		if a.State != StateInactive {
			t.Fatalf("rule %q fired on an absent metric: %v", a.Rule.Name, a.State)
		}
	}
}

func TestLTRule(t *testing.T) {
	e := NewEngine([]Rule{{Name: "floor", Metric: "redbud_live", Field: FieldValue, Op: LT, Threshold: 2}})
	if a := state(t, e.Evaluate(slot0, gaugeSnap("redbud_live", 1)), "floor"); a.State != StateFiring {
		t.Fatalf("LT breach: %v", a.State)
	}
}

func TestEngineRegisterMetrics(t *testing.T) {
	e := NewEngine([]Rule{{Name: "backlog", Metric: "redbud_q", Field: FieldValue, Op: GT, Threshold: 10}})
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)
	e.Evaluate(slot0, gaugeSnap("redbud_q", 99))
	var gotState, gotTransitions int64 = -1, -1
	for _, m := range reg.Snapshot().Metrics {
		switch m.Name {
		case "redbud_slo_alert_state":
			if m.Labels != `rule="backlog"` {
				t.Fatalf("alert-state labels = %q", m.Labels)
			}
			gotState = m.Value
		case "redbud_slo_transitions_total":
			gotTransitions = m.Value
		}
	}
	if gotState != int64(StateFiring) || gotTransitions != 1 {
		t.Fatalf("exported state=%d transitions=%d, want %d and 1", gotState, gotTransitions, StateFiring)
	}
}

func TestEventLogBounded(t *testing.T) {
	e := NewEngine([]Rule{{Name: "flap", Metric: "redbud_q", Field: FieldValue, Op: GT, Threshold: 10}})
	for i := 0; i < 300; i++ {
		v := int64(0)
		if i%2 == 0 {
			v = 99
		}
		e.Evaluate(slot0.Add(time.Duration(i)*time.Second), gaugeSnap("redbud_q", v))
	}
	if ev := e.Events(); len(ev) != maxEvents {
		t.Fatalf("event log holds %d entries, want the %d cap", len(ev), maxEvents)
	}
}

func TestFiringSortedSubset(t *testing.T) {
	e := NewEngine([]Rule{
		{Name: "zeta", Metric: "redbud_q", Field: FieldValue, Op: GT, Threshold: 10},
		{Name: "alpha", Metric: "redbud_q", Field: FieldValue, Op: GT, Threshold: 10},
		{Name: "quiet", Metric: "redbud_q", Field: FieldValue, Op: GT, Threshold: 1000},
	})
	e.Evaluate(slot0, gaugeSnap("redbud_q", 99))
	f := e.Firing()
	if len(f) != 2 || f[0].Rule.Name != "alpha" || f[1].Rule.Name != "zeta" {
		t.Fatalf("Firing() = %+v, want [alpha zeta]", f)
	}
}

// TestDefaultRulesFireOnRegression drives the stock rule set with synthetic
// regressions: a commit-latency p99 blowout trips exactly commit-p99-high,
// and a sustained retry burn trips exactly retry-storm — each rule names its
// cause, and a healthy snapshot keeps all of them silent.
func TestDefaultRulesFireOnRegression(t *testing.T) {
	healthy := obs.Snapshot{Metrics: []obs.MetricValue{
		{Name: "redbud_mds_commit_latency_seconds", Kind: obs.KindHistogram, Hist: &obs.HistValue{Count: 100, P99: 0.001}},
		{Name: "redbud_meta_ns_intents", Kind: obs.KindGauge, Value: 2},
		{Name: "redbud_client_retries_total", Kind: obs.KindCounter, Value: 0},
	}}
	e := NewEngine(DefaultRules())
	e.Evaluate(slot0, healthy)
	if f := e.Firing(); len(f) != 0 {
		t.Fatalf("healthy snapshot fired %+v", f)
	}

	regressed := obs.Snapshot{Metrics: []obs.MetricValue{
		{Name: "redbud_mds_commit_latency_seconds", Kind: obs.KindHistogram, Hist: &obs.HistValue{Count: 100, P99: 0.5}},
		{Name: "redbud_meta_ns_intents", Kind: obs.KindGauge, Value: 2},
		{Name: "redbud_client_retries_total", Kind: obs.KindCounter, Value: 500},
	}}
	e.Evaluate(slot0.Add(10*time.Second), regressed)
	f := e.Firing()
	if len(f) != 2 || f[0].Rule.Name != "commit-p99-high" || f[1].Rule.Name != "retry-storm" {
		t.Fatalf("regression fired %+v, want exactly [commit-p99-high retry-storm]", f)
	}
}
