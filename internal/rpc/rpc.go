// Package rpc implements the metadata RPC protocol of the simulated cluster:
// length-framed binary messages (via internal/wire) over a netsim.Conn,
// concurrent client calls with a pending table, a server daemon-thread pool
// of configurable size (the "server daemon threads" axis of Figure 7), and
// first-class compound requests that carry several operations in one network
// frame (the "compound degree" axis).
//
// Every response piggybacks a one-byte server-load estimate, which the
// client's adaptive compound controller reads to decide how aggressively to
// batch.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"redbud/internal/clock"
	"redbud/internal/netsim"
	"redbud/internal/obs"
	"redbud/internal/stats"
	"redbud/internal/wire"
)

// Frame kinds.
const (
	kindRequest  = 0
	kindResponse = 1
)

// OpCompound is the reserved operation code for compound requests.
const OpCompound uint16 = 0xffff

// Errors.
var (
	ErrClientClosed = errors.New("rpc: client closed")
	ErrServerClosed = errors.New("rpc: server closed")
	ErrBadFrame     = errors.New("rpc: malformed frame")
	// ErrConnClosed marks calls that were in flight when the transport
	// died. Unlike ErrBadFrame (protocol corruption on a live link) it is
	// safe grounds for a retry layer to redial and resend idempotent work.
	ErrConnClosed = errors.New("rpc: connection closed")
	// ErrTimeout marks a call that exceeded the client's call timeout. The
	// request may or may not have executed on the server.
	ErrTimeout = errors.New("rpc: call timed out")
)

// RemoteError is an application-level error returned by a handler.
type RemoteError struct {
	Op      uint16
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error on op %d: %s", e.Op, e.Message)
}

// Handler processes one operation and returns the reply payload. Handlers
// run on server daemon threads and may block (e.g. on the metadata disk).
type Handler func(op uint16, body []byte) ([]byte, error)

// ---------------------------------------------------------------------------
// Compound encoding

// SubOp is one operation inside a compound request.
type SubOp struct {
	Op   uint16
	Body []byte
}

// SubResult is one operation's outcome inside a compound reply.
type SubResult struct {
	Err  error
	Body []byte
}

// encodeCompound packs sub-operations into one payload.
func encodeCompound(ops []SubOp) []byte {
	var b wire.Buffer
	b.PutU16(uint16(len(ops)))
	for _, o := range ops {
		b.PutU16(o.Op)
		b.PutBytes(o.Body)
	}
	return b.Bytes()
}

// decodeCompound unpacks a compound request payload.
func decodeCompound(p []byte) ([]SubOp, error) {
	r := wire.NewReader(p)
	n := int(r.U16())
	ops := make([]SubOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, SubOp{Op: r.U16(), Body: r.Bytes()})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// encodeCompoundReply packs per-sub-op results.
func encodeCompoundReply(results []SubResult) []byte {
	var b wire.Buffer
	b.PutU16(uint16(len(results)))
	for _, res := range results {
		if res.Err != nil {
			b.PutU16(1)
			b.PutString(res.Err.Error())
		} else {
			b.PutU16(0)
			b.PutBytes(res.Body)
		}
	}
	return b.Bytes()
}

// decodeCompoundReply unpacks per-sub-op results, attributing remote errors
// to their sub-operation codes.
func decodeCompoundReply(p []byte, ops []SubOp) ([]SubResult, error) {
	r := wire.NewReader(p)
	n := int(r.U16())
	if n != len(ops) {
		return nil, fmt.Errorf("%w: compound reply has %d results for %d ops", ErrBadFrame, n, len(ops))
	}
	out := make([]SubResult, 0, n)
	for i := 0; i < n; i++ {
		if status := r.U16(); status != 0 {
			out = append(out, SubResult{Err: &RemoteError{Op: ops[i].Op, Message: r.String()}})
		} else {
			out = append(out, SubResult{Body: r.Bytes()})
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Server

// ServerConfig configures a Server.
type ServerConfig struct {
	Handler Handler
	// Daemons is the worker pool size; Figure 7 sweeps 1, 8, 16.
	Daemons int
	// QueueCap bounds the incoming request queue (default 1024).
	QueueCap int
	// OpCost is the simulated CPU time one daemon spends per operation
	// (per sub-operation for compounds).
	OpCost time.Duration
	// FrameCost is the per-RPC-frame overhead (request wakeup, decode,
	// reply construction) paid once regardless of how many sub-operations
	// the frame carries — the server-side saving that RPC compounding
	// buys.
	FrameCost time.Duration
	// ContentionPerDaemon inflates OpCost by this fraction for every
	// daemon beyond the first, modelling the multi-thread contention the
	// paper sees going from 8 to 16 daemons.
	ContentionPerDaemon float64
	Clock               clock.Clock
	// Tracer, if non-nil, records rpc.queue / rpc.process spans for every
	// frame on per-worker tracks "<TraceTrack>/worker-<i>".
	Tracer *obs.Tracer
	// TraceTrack is the span track prefix (default "rpc").
	TraceTrack string
}

// call is one queued request.
type call struct {
	conn  netsim.Conn
	msgID uint64
	op    uint16
	body  []byte    // aliases frame
	frame []byte    // pooled receive buffer; recycled after processing
	enq   time.Time // enqueue time; stamped only when tracing is on
}

// Server dispatches decoded requests to a fixed pool of daemon goroutines.
type Server struct {
	cfg    ServerConfig
	clk    clock.Clock
	queue  chan call
	done   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
	connWG sync.WaitGroup

	tracks []string // per-worker span track names

	inflight  stats.Gauge
	processed stats.Counter
	subOps    stats.Counter
}

// NewServer starts the daemon pool and returns the server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Handler == nil {
		panic("rpc: nil handler")
	}
	if cfg.Daemons <= 0 {
		cfg.Daemons = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real(1)
	}
	if cfg.TraceTrack == "" {
		cfg.TraceTrack = "rpc"
	}
	s := &Server{cfg: cfg, clk: cfg.Clock, queue: make(chan call, cfg.QueueCap), done: make(chan struct{})}
	s.tracks = make([]string, cfg.Daemons)
	for i := range s.tracks {
		s.tracks[i] = fmt.Sprintf("%s/worker-%d", cfg.TraceTrack, i)
	}
	for i := 0; i < cfg.Daemons; i++ {
		s.wg.Add(1)
		go s.daemon(i)
	}
	return s
}

// opCost returns the effective per-operation CPU time including the
// contention penalty of a wide pool.
func (s *Server) opCost() time.Duration {
	c := float64(s.cfg.OpCost)
	c *= 1 + s.cfg.ContentionPerDaemon*float64(s.cfg.Daemons-1)
	return time.Duration(c)
}

// Load returns the current server load estimate in [0, 255]: 0 when idle,
// saturating as queued+running work exceeds the daemon pool severalfold.
func (s *Server) Load() uint8 {
	outstanding := int(s.inflight.Load()) + len(s.queue)
	load := outstanding * 64 / s.cfg.Daemons
	if load > 255 {
		load = 255
	}
	return uint8(load)
}

// Processed returns the number of RPCs completed (compound counts once).
func (s *Server) Processed() int64 { return s.processed.Load() }

// SubOps returns the number of operations executed, counting each
// sub-operation of a compound.
func (s *Server) SubOps() int64 { return s.subOps.Load() }

// QueueLen returns the instantaneous request queue length.
func (s *Server) QueueLen() int { return len(s.queue) }

// RegisterMetrics exposes the server's counters in a metrics registry.
func (s *Server) RegisterMetrics(r *obs.Registry, labels obs.Labels) {
	if r == nil {
		return
	}
	r.CounterFunc("redbud_rpc_processed_total", "RPC frames completed (a compound counts once)", labels, s.processed.Load)
	r.CounterFunc("redbud_rpc_subops_total", "operations executed, counting compound sub-ops", labels, s.subOps.Load)
	r.GaugeFunc("redbud_rpc_queue_len", "instantaneous request queue length", labels,
		func() int64 { return int64(s.QueueLen()) })
	r.GaugeFunc("redbud_rpc_inflight", "requests currently on a daemon thread", labels, s.inflight.Load)
	r.GaugeFunc("redbud_rpc_load", "server load estimate in [0,255]", labels,
		func() int64 { return int64(s.Load()) })
}

// Serve accepts connections from l until the listener or server closes.
func (s *Server) Serve(l *netsim.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn reads frames from one connection until it fails or the server
// closes.
//
//redbud:hotpath
func (s *Server) ServeConn(conn netsim.Conn) {
	defer conn.Close()
	for {
		frame, err := conn.Recv()
		if err != nil {
			return
		}
		var r wire.Reader
		r.Reset(frame)
		msgID := r.U64()
		kind := r.U8()
		op := r.U16()
		if r.Err() != nil || kind != kindRequest {
			wire.PutFrame(frame)
			continue // drop malformed frame
		}
		body := frame[len(frame)-r.Remaining():]
		c := call{conn: conn, msgID: msgID, op: op, body: body, frame: frame}
		if s.cfg.Tracer.Enabled() {
			c.enq = s.clk.Now()
		}
		select {
		case s.queue <- c:
		case <-s.done:
			wire.PutFrame(frame)
			return
		}
	}
}

// daemon is one worker of the pool.
func (s *Server) daemon(i int) {
	defer s.wg.Done()
	track := s.tracks[i]
	for {
		select {
		case c := <-s.queue:
			s.inflight.Add(1)
			if s.cfg.Tracer.Enabled() && !c.enq.IsZero() {
				deq := s.clk.Now()
				s.cfg.Tracer.Record(track, obs.SpanRPCQueue, 0, c.enq, deq)
				s.process(c)
				s.cfg.Tracer.Record(track, obs.SpanRPCProcess, 0, deq, s.clk.Now())
			} else {
				s.process(c)
			}
			s.inflight.Add(-1)
		case <-s.done:
			return
		}
	}
}

// process executes one call and sends the response. It owns c.frame and
// returns it to the pool once the response is on the wire.
//
//redbud:hotpath
func (s *Server) process(c call) {
	var payload []byte
	var status uint16
	var errMsg string

	if s.cfg.FrameCost > 0 {
		s.clk.Sleep(s.cfg.FrameCost)
	}

	if c.op == OpCompound {
		ops, err := decodeCompound(c.body)
		if err != nil {
			status, errMsg = 1, err.Error()
		} else {
			results := make([]SubResult, 0, len(ops))
			for _, o := range ops {
				s.execCost()
				body, err := s.cfg.Handler(o.Op, o.Body)
				s.subOps.Inc()
				results = append(results, SubResult{Body: body, Err: err})
			}
			payload = encodeCompoundReply(results)
		}
	} else {
		s.execCost()
		body, err := s.cfg.Handler(c.op, c.body)
		s.subOps.Inc()
		if err != nil {
			status, errMsg = 1, err.Error()
		} else {
			payload = body
		}
	}
	s.processed.Inc()

	// Gather-write framing: the 12-byte response header plus the length
	// prefix go in a pooled buffer, the payload rides as the second
	// segment — one copy into the (pooled) network frame, no
	// concatenation. A failed send means the connection died; the client
	// will see its own error.
	b := wire.GetBuffer()
	b.PutU64(c.msgID)
	b.PutU8(kindResponse)
	b.PutU16(status)
	b.PutU8(s.Load())
	if status != 0 {
		b.PutString(errMsg)
		_ = netsim.SendVec(c.conn, b.Bytes(), nil)
	} else {
		b.PutU32(uint32(len(payload)))
		_ = netsim.SendVec(c.conn, b.Bytes(), payload)
	}
	wire.PutBuffer(b)
	// The payload may alias the request frame (echo-style handlers); it is
	// dead once the send copied it out.
	wire.PutFrame(c.frame)
}

// execCost burns the simulated CPU time of one operation.
func (s *Server) execCost() {
	if c := s.opCost(); c > 0 {
		s.clk.Sleep(c)
	}
}

// Close stops the daemon pool. In-flight operations finish; queued ones are
// dropped.
func (s *Server) Close() {
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
}

// ---------------------------------------------------------------------------
// Client

// pendingCall tracks one outstanding request. Instances are pooled: a call
// is owned either by exactly one shard map entry or by the goroutine that
// removed it, so each use sees at most one channel send.
type pendingCall struct {
	ch chan response
}

var callPool = sync.Pool{New: func() any { return &pendingCall{ch: make(chan response, 1)} }}

type response struct {
	status  uint16
	busy    uint8
	payload []byte // aliases frame when non-nil
	frame   []byte // pooled receive buffer, handed to the waiter
	err     error
}

// pendingShards is the number of pending-table shards. Message IDs are
// sequential, so concurrent calls spread evenly.
const pendingShards = 16

type pendingShard struct {
	mu      sync.Mutex
	pending map[uint64]*pendingCall
	_       [32]byte // avoid false sharing between adjacent shards
}

// Client issues concurrent RPCs over one connection. The pending table is
// sharded by message ID so concurrent callers don't serialize on one mutex,
// and frame buffers and call handles are pooled, keeping the per-call
// allocation count flat under load.
type Client struct {
	conn netsim.Conn
	clk  clock.Clock

	shards [pendingShards]pendingShard
	closed atomic.Bool
	// closeErr is set (under every shard lock) before closed, so readers
	// that observe closed see the cause.
	closeErr error

	nextID    atomic.Uint64
	busy      atomic.Uint32 // last piggybacked server load
	rttNs     atomic.Int64  // EWMA of call round-trip, nanoseconds
	badFrames atomic.Int64  // malformed response frames received
	timeoutNs atomic.Int64  // per-call timeout; 0 = wait forever

	calls stats.Counter
}

// NewClient wraps conn and starts the response reader.
func NewClient(conn netsim.Conn, clk clock.Clock) *Client {
	if clk == nil {
		clk = clock.Real(1)
	}
	c := &Client{conn: conn, clk: clk}
	for i := range c.shards {
		c.shards[i].pending = make(map[uint64]*pendingCall)
	}
	go c.readLoop()
	return c
}

func (c *Client) shard(id uint64) *pendingShard { return &c.shards[id%pendingShards] }

// register installs p in the pending table, refusing if the client closed.
func (c *Client) register(id uint64, p *pendingCall) error {
	sh := c.shard(id)
	sh.mu.Lock()
	if c.closed.Load() {
		cause := c.closeErr
		sh.mu.Unlock()
		if cause != nil {
			// Keep the connection-death cause visible so callers can
			// distinguish a dead transport from a deliberate Close.
			return fmt.Errorf("%w: %w", ErrClientClosed, cause)
		}
		return ErrClientClosed
	}
	sh.pending[id] = p
	sh.mu.Unlock()
	return nil
}

// take removes and returns the pending call for id, or nil if another
// goroutine (a response or failAll) already owns it.
func (c *Client) take(id uint64) *pendingCall {
	sh := c.shard(id)
	sh.mu.Lock()
	p := sh.pending[id]
	delete(sh.pending, id)
	sh.mu.Unlock()
	return p
}

//redbud:hotpath
func (c *Client) readLoop() {
	var r wire.Reader
	for {
		frame, err := c.conn.Recv()
		if err != nil {
			//lint:allow hotpath — connection-teardown path, never taken at steady state
			c.failAll(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		r.Reset(frame)
		msgID := r.U64()
		kind := r.U8()
		status := r.U16()
		busy := r.U8()
		if r.Err() != nil || kind != kindResponse {
			// A frame too short for the response header, or of the
			// wrong kind. Don't drop it on the floor: the caller
			// whose ID it carries (if any) would otherwise hang
			// until the connection dies. Fail that call and count
			// the frame so the condition is observable.
			c.badFrames.Add(1)
			if p := c.take(msgID); p != nil {
				//lint:allow hotpath — malformed-frame error path, never taken at steady state
				p.ch <- response{err: fmt.Errorf("%w: %d-byte response frame, kind %d", ErrBadFrame, len(frame), kind)}
			}
			wire.PutFrame(frame)
			continue
		}
		c.busy.Store(uint32(busy))
		var resp response
		resp.status = status
		resp.busy = busy
		if status != 0 {
			resp.err = &RemoteError{Message: r.String()}
		} else {
			// The frame is owned by this loop and handed to exactly
			// one waiter, so the payload may alias it.
			resp.payload = r.BytesRef()
		}
		if err := r.Err(); err != nil {
			c.badFrames.Add(1)
			//lint:allow hotpath — malformed-frame error path, never taken at steady state
			resp.err = fmt.Errorf("%w: %v", ErrBadFrame, err)
			resp.payload = nil
		}
		if resp.payload != nil {
			// The waiter owns the frame from here: it recycles it
			// after decoding (Call/Compound) or pins it for as long
			// as the reply is referenced (CallRaw).
			resp.frame = frame
		} else {
			// Error responses copy everything they keep (the remote
			// message string); the frame is already dead.
			wire.PutFrame(frame)
		}
		if p := c.take(msgID); p != nil {
			//lint:allow wirealias — deliberate ownership handoff: exactly one waiter receives the frame-aliasing payload and recycles the frame
			p.ch <- resp
		} else if resp.frame != nil {
			// Late response for a timed-out or failed call: no waiter
			// will ever see it.
			wire.PutFrame(frame)
		}
	}
}

// failAll aborts every pending call with err and marks the client closed.
func (c *Client) failAll(err error) {
	// Lock every shard, publish the cause, then mark closed: register
	// checks closed under its shard lock, so once the flag is visible no
	// new call can slip into a shard this loop already drained.
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	c.closeErr = err
	c.closed.Store(true)
	var pend []*pendingCall
	for i := range c.shards {
		sh := &c.shards[i]
		for _, p := range sh.pending {
			pend = append(pend, p)
		}
		sh.pending = make(map[uint64]*pendingCall)
		sh.mu.Unlock()
	}
	for _, p := range pend {
		p.ch <- response{err: err}
	}
}

// BadFrames returns the number of malformed response frames received.
func (c *Client) BadFrames() int64 { return c.badFrames.Load() }

// SetCallTimeout bounds how long each subsequent call waits for its
// response (0 restores waiting forever). A timed-out call returns an error
// wrapping ErrTimeout; whether the server executed it is unknown, so only
// idempotent requests should be retried.
func (c *Client) SetCallTimeout(d time.Duration) { c.timeoutNs.Store(int64(d)) }

// CallRaw issues op with an already-encoded body and returns the raw reply.
// The reply slice may alias the client's receive buffer for that call; it is
// owned by the caller and stays valid indefinitely (the buffer is pinned,
// not recycled), but callers needing to mutate it should copy. Hot paths
// should prefer Call or Compound, which return the receive buffer to the
// frame pool after decoding.
func (c *Client) CallRaw(op uint16, body []byte) ([]byte, error) {
	payload, _, err := c.call(op, body)
	return payload, err
}

// call issues op and returns the reply payload together with the pooled
// receive frame backing it. The caller owns the frame: it must either
// wire.PutFrame it once done with the payload, or let it be garbage
// collected if the payload escapes. On error the frame is already released.
//
//redbud:hotpath
func (c *Client) call(op uint16, body []byte) (payload, frame []byte, err error) {
	id := c.nextID.Add(1)
	p := callPool.Get().(*pendingCall)
	if err := c.register(id, p); err != nil {
		callPool.Put(p)
		return nil, nil, err
	}

	// Gather-write framing: the 11-byte request header goes in a pooled
	// buffer and the body rides as the second segment, so the body is
	// copied exactly once — into the pooled network frame.
	b := wire.GetBuffer()
	b.PutU64(id)
	b.PutU8(kindRequest)
	b.PutU16(op)

	start := c.clk.Now()
	err = netsim.SendVec(c.conn, b.Bytes(), body)
	wire.PutBuffer(b)
	if err != nil {
		// A transport that cannot carry the request is as dead as one
		// whose read side failed: surface the same sentinel.
		//lint:allow hotpath — send-failure path, never taken at steady state
		err = fmt.Errorf("%w: send: %v", ErrConnClosed, err)
		if c.take(id) != nil {
			// We removed the call ourselves; nothing can send on it.
			callPool.Put(p)
			return nil, nil, err
		}
		// A racing response or failAll owns the call and will send
		// exactly once; drain before recycling.
		resp := <-p.ch
		wire.PutFrame(resp.frame)
		callPool.Put(p)
		return nil, nil, err
	}
	var resp response
	if d := time.Duration(c.timeoutNs.Load()); d > 0 {
		select {
		case resp = <-p.ch:
		case <-c.clk.After(d):
			if c.take(id) != nil {
				// We own the call again: no response can reach it, so
				// the handle is safe to recycle. A late response for
				// this ID will find no pending entry and be recycled by
				// the read loop.
				callPool.Put(p)
				//lint:allow hotpath — timeout path, never taken at steady state
				return nil, nil, fmt.Errorf("%w: op %d after %v", ErrTimeout, op, d)
			}
			// A response or failAll won the race; its send is imminent.
			resp = <-p.ch
		}
	} else {
		resp = <-p.ch
	}
	callPool.Put(p)
	c.observeRTT(c.clk.Since(start))
	c.calls.Inc()
	if resp.err != nil {
		wire.PutFrame(resp.frame)
		return nil, nil, resp.err
	}
	return resp.payload, resp.frame, nil
}

// Call issues op, encoding req and decoding the reply into resp. Either may
// be nil for empty bodies. Request and response buffers are pooled: the
// steady-state call path performs no heap allocation of its own.
//
//redbud:hotpath
func (c *Client) Call(op uint16, req wire.Marshaler, resp wire.Unmarshaler) error {
	var body []byte
	var eb *wire.Buffer
	if req != nil {
		eb = wire.GetBuffer()
		req.MarshalWire(eb)
		body = eb.Bytes()
	}
	payload, frame, err := c.call(op, body)
	if eb != nil {
		// The transport copied the body into its own frame before the
		// call round-tripped; the encode buffer is long dead.
		wire.PutBuffer(eb)
	}
	if err != nil {
		return err
	}
	if resp != nil {
		// Response decoders must copy everything they keep (wire strings
		// and Bytes are copies): the frame is recycled as soon as Decode
		// returns. The wirealias analyzer enforces this; the only zero-copy
		// BytesRef decoders in the tree are server-side request messages,
		// whose pooled frame outlives the handler instead.
		err = wire.Decode(payload, resp)
	}
	wire.PutFrame(frame)
	return err
}

// Compound sends the sub-operations as a single network frame and returns
// per-operation results in order.
//
//redbud:hotpath
func (c *Client) Compound(ops []SubOp) ([]SubResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	b := wire.GetBuffer()
	b.PutU16(uint16(len(ops)))
	for _, o := range ops {
		b.PutU16(o.Op)
		b.PutBytes(o.Body)
	}
	payload, frame, err := c.call(OpCompound, b.Bytes())
	wire.PutBuffer(b)
	if err != nil {
		return nil, err
	}
	// decodeCompoundReply copies every body and error string out of the
	// frame, so it can be recycled immediately after.
	results, err := decodeCompoundReply(payload, ops)
	wire.PutFrame(frame)
	return results, err
}

// Inflight returns the number of calls currently awaiting a response. The
// commit autoscaler reads it as a saturation signal.
func (c *Client) Inflight() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.pending)
		sh.mu.Unlock()
	}
	return n
}

// observeRTT folds one sample into the RTT EWMA (alpha = 1/8).
func (c *Client) observeRTT(d time.Duration) {
	for {
		old := c.rttNs.Load()
		nw := old + (int64(d)-old)/8
		if old == 0 {
			nw = int64(d)
		}
		if c.rttNs.CompareAndSwap(old, nw) {
			return
		}
	}
}

// MeanRTT returns the smoothed round-trip time of recent calls.
func (c *Client) MeanRTT() time.Duration { return time.Duration(c.rttNs.Load()) }

// ServerLoad returns the most recent piggybacked server-load byte.
func (c *Client) ServerLoad() uint8 { return uint8(c.busy.Load()) }

// Calls returns the number of completed RPCs.
func (c *Client) Calls() int64 { return c.calls.Load() }

// RegisterMetrics exposes the client-side call counters in a metrics
// registry.
func (c *Client) RegisterMetrics(r *obs.Registry, labels obs.Labels) {
	if r == nil {
		return
	}
	r.CounterFunc("redbud_rpc_client_calls_total", "RPCs completed by this client connection", labels, c.calls.Load)
	r.CounterFunc("redbud_rpc_client_bad_frames_total", "malformed response frames received", labels, c.badFrames.Load)
	r.GaugeFunc("redbud_rpc_client_rtt_ns", "smoothed call round-trip time in nanoseconds", labels, c.rttNs.Load)
}

// Close tears down the connection, failing outstanding calls.
func (c *Client) Close() error { return c.conn.Close() }
