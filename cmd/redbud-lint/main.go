// Command redbud-lint runs redbud's static-analysis suite (internal/lint):
// lockorder, durability, simclock, senterr, hotpath, wiresym, wireevolve and
// wirealias.
//
// It speaks two protocols:
//
//   - Standalone: `redbud-lint ./...` (or a list of package directories)
//     loads and checks packages of the enclosing module directly.
//
//   - go vet: `go vet -vettool=$(command -v redbud-lint) ./...` — the go
//     command invokes the tool once per package with a JSON config file, the
//     same unit-checker protocol used by golang.org/x/tools analyzers. This
//     is the mode CI uses: the go command handles package discovery, export
//     data and caching.
//
// A third mode gates the wire schema: `redbud-lint -wireschema` extracts the
// canonical put/get schema of every wire message in the module and diffs it
// against the committed lockfile internal/lint/testdata/wire_schema.golden,
// failing on any frame-layout drift; `-wireschema -update` regenerates the
// lockfile after an intentional change (bump proto.ProtoVersion first if the
// change is visible on the wire).
//
// Exit status: 0 for no findings, 1 for an internal error, 2 if any
// diagnostic was reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"redbud/internal/lint"
)

func main() {
	versionFlag := flag.String("V", "", "print version and exit (the go command probes with -V=full)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON (go vet probe)")
	wireschemaFlag := flag.Bool("wireschema", false, "diff the module's extracted wire schema against the committed lockfile")
	updateFlag := flag.Bool("update", false, "with -wireschema: regenerate the lockfile instead of diffing")
	goldenFlag := flag.String("golden", "", "with -wireschema: lockfile path (default internal/lint/testdata/wire_schema.golden)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: redbud-lint [packages]\n   or: redbud-lint -wireschema [-update]\n   or: go vet -vettool=$(command -v redbud-lint) [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	// go vet probes the tool identity with -V=full; the output becomes part
	// of its cache key, so a "devel" version must carry a buildID derived
	// from the binary's own content (same scheme as x/tools' unitchecker).
	if *versionFlag != "" {
		exe, err := os.Executable()
		if err != nil {
			fatalf("%v", err)
		}
		f, err := os.Open(exe)
		if err != nil {
			fatalf("%v", err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			fatalf("%v", err)
		}
		f.Close()
		fmt.Printf("%s version devel redbud buildID=%02x\n", filepath.Base(os.Args[0]), h.Sum(nil))
		return
	}
	// go vet asks which flags the tool accepts; we expose none.
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	if *wireschemaFlag {
		os.Exit(runWireSchema(*updateFlag, *goldenFlag))
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "redbud-lint: "+format+"\n", args...)
	os.Exit(1)
}

// ---------------------------------------------------------------------------
// Standalone mode

func runStandalone(args []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatalf("%v", err)
	}

	var paths []string
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "all")) {
		paths, err = loader.ModulePackages()
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, arg := range args {
			p, err := importPathFor(loader, cwd, arg)
			if err != nil {
				fatalf("%v", err)
			}
			paths = append(paths, p)
		}
	}

	exit := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatalf("%v", err)
		}
		diags, err := lint.Run(pkg, lint.Analyzers())
		if err != nil {
			fatalf("%v", err)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
			exit = 2
		}
	}
	return exit
}

// ---------------------------------------------------------------------------
// Wire-schema lockfile mode

// runWireSchema extracts the canonical wire schema of every module package,
// renders the deterministic lockfile text, and either diffs it against the
// committed golden (exit 2 on drift) or rewrites the golden (-update).
func runWireSchema(update bool, goldenPath string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatalf("%v", err)
	}
	paths, err := loader.ModulePackages()
	if err != nil {
		fatalf("%v", err)
	}
	var schemas []*lint.MessageSchema
	protoVersion := "unknown"
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatalf("%v", err)
		}
		schemas = append(schemas, lint.ExtractWireSchemas(pkg.Fset, pkg.Files, pkg.Info, pkg.Types)...)
		if pkg.Types.Name() == "proto" {
			if v := protoLatestValue(pkg.Types); v != "" {
				protoVersion = v
			}
		}
	}
	got := lint.RenderWireSchemas(schemas, protoVersion)

	if goldenPath == "" {
		goldenPath = filepath.Join(root, "internal", "lint", "testdata", "wire_schema.golden")
	}
	if update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("redbud-lint: wrote %s (%d messages)\n", goldenPath, len(schemas))
		return 0
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		fatalf("reading lockfile: %v (generate it with -wireschema -update)", err)
	}
	if string(want) == got {
		return 0
	}
	fmt.Fprintf(os.Stderr, "redbud-lint: wire schema drifted from %s:\n", goldenPath)
	printLineDiff(os.Stderr, string(want), got)
	fmt.Fprintf(os.Stderr, "\nThe frame layout no longer matches the committed lockfile. If the change\nis intentional: bump proto.ProtoVersion for any wire-visible change (and\ngate the new fields as trailing optionals), then regenerate with\n`redbud-lint -wireschema -update`.\n")
	return 2
}

// protoLatestValue reads the proto package's ProtoLatest constant, rendered
// as "v<N>" for the lockfile header.
func protoLatestValue(pkg *types.Package) string {
	c, ok := pkg.Scope().Lookup("ProtoLatest").(*types.Const)
	if !ok {
		return ""
	}
	return "v" + c.Val().ExactString()
}

// printLineDiff prints a set-style diff of two sorted-line documents:
// `-` lines only in the lockfile, `+` lines only in the extracted schema.
func printLineDiff(w io.Writer, want, got string) {
	wantLines := strings.Split(want, "\n")
	gotLines := strings.Split(got, "\n")
	inWant := make(map[string]bool, len(wantLines))
	for _, l := range wantLines {
		inWant[l] = true
	}
	inGot := make(map[string]bool, len(gotLines))
	for _, l := range gotLines {
		inGot[l] = true
	}
	for _, l := range wantLines {
		if !inGot[l] {
			fmt.Fprintf(w, "  - %s\n", l)
		}
	}
	for _, l := range gotLines {
		if !inWant[l] {
			fmt.Fprintf(w, "  + %s\n", l)
		}
	}
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("redbud-lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// importPathFor maps a command-line package argument (./internal/meta,
// redbud/internal/meta, internal/meta/...) to module import paths.
func importPathFor(l *lint.Loader, cwd, arg string) (string, error) {
	if strings.HasPrefix(arg, l.ModulePath) {
		return arg, nil
	}
	abs := arg
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(cwd, arg)
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("redbud-lint: %s is outside module %s", arg, l.ModulePath)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// ---------------------------------------------------------------------------
// go vet unit-checker mode

// vetConfig is the JSON schema the go command writes for -vettool
// invocations (cmd/go/internal/work's vet.cfg).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgFile, err)
	}

	// The go command requires the output facts file to exist even though
	// this suite exports no facts.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fatalf("%v", err)
			}
		}
	}

	// Dependency-only invocation: nothing to analyze, no facts to compute.
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	// Imports resolve through the export-data files the go command already
	// built: ImportMap canonicalizes source-level import paths (vendoring),
	// PackageFile locates each canonical path's export data.
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if canon, ok := cfg.ImportMap[importPath]; ok {
			importPath = canon
		}
		return compilerImp.Import(importPath)
	})

	pkg, err := lint.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fatalf("%v", err)
	}
	pkg.Dir = cfg.Dir

	diags, err := lint.Run(pkg, lint.Analyzers())
	if err != nil {
		fatalf("%v", err)
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	return 2
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
