package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture loads testdata/src/<path> and checks the analyzer's diagnostics
// against the fixture's `// want `regexp“ comments, analysistest-style:
// every want comment must be matched by a diagnostic on its line, and every
// diagnostic must have a matching want comment.
func runFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	l := NewFixtureLoader(filepath.Join("testdata", "src"))
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				rest = strings.TrimSpace(rest)
				if len(rest) < 2 || rest[0] != '`' || rest[len(rest)-1] != '`' {
					t.Fatalf("%s: malformed want comment %q (expected backquoted regexp)", pkg.Fset.Position(c.Pos()), c.Text)
				}
				re, err := regexp.Compile(rest[1 : len(rest)-1])
				if err != nil {
					t.Fatalf("%s: bad want regexp: %v", pkg.Fset.Position(c.Pos()), err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[key{pos.Filename, pos.Line}] = re
			}
		}
	}

	matched := make(map[key]bool)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		re, ok := wants[k]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match want %q", d.Pos, d.Message, re)
			continue
		}
		matched[k] = true
	}
	for k, re := range wants {
		if !matched[k] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, fmt.Sprintf("  %s", d))
		}
		t.Logf("all diagnostics:\n%s", strings.Join(all, "\n"))
	}
}

func TestLockOrderFixture(t *testing.T)  { runFixture(t, LockOrder, "lockorder") }
func TestDurabilityFixture(t *testing.T) { runFixture(t, Durability, "durability") }
func TestSimClockFixture(t *testing.T)   { runFixture(t, SimClock, "simclock") }

// TestSimClockDebugHTTPAllowed checks the package-level allow-list: the
// debughttp fixture calls time.Now/Since with no `// want` comments, so the
// run must produce zero diagnostics.
func TestSimClockDebugHTTPAllowed(t *testing.T) { runFixture(t, SimClock, "debughttp") }
func TestSentErrFixture(t *testing.T)           { runFixture(t, SentErr, "senterr") }
func TestHotpathFixture(t *testing.T)           { runFixture(t, Hotpath, "hotpath") }
func TestWireSymFixture(t *testing.T)           { runFixture(t, WireSym, "wiresym") }
func TestWireEvolveFixture(t *testing.T)        { runFixture(t, WireEvolve, "wireevolve") }

// TestWireEvolveClampFixture checks rule 3 against a fixture MDS: consuming
// the v2-gated LayoutWantUncommitted flag without a session-version clamp.
func TestWireEvolveClampFixture(t *testing.T) { runFixture(t, WireEvolve, "mds") }
func TestWireAliasFixture(t *testing.T)       { runFixture(t, WireAlias, "wirealias") }
