package meta

import (
	"strings"
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/clock"
)

func fsckStore(t *testing.T) (*Store, int64) {
	t.Helper()
	ags := alloc.NewUniformAGSet(alloc.RoundRobin, 0, 64<<20, 4)
	s := NewStore(Config{AGs: ags, Clock: clock.Real(1)})
	return s, TotalSpace(ags)
}

func TestFsckCleanStore(t *testing.T) {
	s, total := fsckStore(t)
	r := s.Fsck(total)
	if !r.OK() {
		t.Fatalf("fresh store dirty: %v", r.Problems)
	}
	if r.Files != 0 || r.FreeBytes != total {
		t.Fatalf("report = %+v", r)
	}
	if !strings.Contains(r.String(), "clean") {
		t.Fatalf("string = %q", r.String())
	}
}

func TestFsckCleanAfterWorkload(t *testing.T) {
	s, total := fsckStore(t)
	dir, _ := s.Create(RootID, "d", TypeDir)
	for i := 0; i < 5; i++ {
		f, err := s.Create(dir.ID, string(rune('a'+i)), TypeFile)
		if err != nil {
			t.Fatal(err)
		}
		lay, err := s.AllocLayout("c1", f.ID, 0, 8192)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := s.Commit("c1", f.ID, lay.Extents, 8192, time.Now().UTC()); err != nil {
				t.Fatal(err)
			}
		}
	}
	sp, err := s.Delegate("c2", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := s.Create(RootID, "deleg-file", TypeFile)
	ext := Extent{FileOff: 0, Len: 4096, Dev: uint32(sp.Dev), VolOff: sp.Off}
	if err := s.Commit("c2", g.ID, []Extent{ext}, 4096, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	r := s.Fsck(total)
	if !r.OK() {
		t.Fatalf("dirty after workload: %v", r.Problems)
	}
	if r.Files != 7 || r.Extents != 6 {
		t.Fatalf("report = %+v", r)
	}
	// After remove + client-gone the identity must still hold.
	if err := s.Remove(RootID, "deleg-file"); err != nil {
		t.Fatal(err)
	}
	s.ClientGone("c1")
	s.ClientGone("c2")
	r = s.Fsck(total)
	if !r.OK() {
		t.Fatalf("dirty after GC: %v", r.Problems)
	}
}

func TestFsckCleanAfterRecovery(t *testing.T) {
	dev := newMetaDev(t)
	mkAGs := func() *alloc.AGSet { return alloc.NewUniformAGSet(alloc.RoundRobin, 0, 64<<20, 4) }
	j := NewJournal(dev, 0, 32<<20)
	s := NewStore(Config{AGs: mkAGs(), Journal: j, Clock: clock.Real(1)})
	a, _ := s.Create(RootID, "x", TypeFile)
	lay, _ := s.AllocLayout("c1", a.ID, 0, 4096)
	if err := s.Commit("c1", a.ID, lay.Extents, 4096, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	ags := mkAGs()
	rec, _, err := Recover(Config{AGs: ags, Journal: NewJournal(dev, 0, 32<<20), Clock: clock.Real(1)})
	if err != nil {
		t.Fatal(err)
	}
	if r := rec.Fsck(TotalSpace(ags)); !r.OK() {
		t.Fatalf("dirty after recovery: %v", r.Problems)
	}
}

func TestFsckDetectsAccountingDrift(t *testing.T) {
	s, total := fsckStore(t)
	a, _ := s.Create(RootID, "f", TypeFile)
	lay, _ := s.AllocLayout("c1", a.ID, 0, 4096)
	_ = lay
	// Lie about the total: the identity must fail.
	if r := s.Fsck(total + 12345); r.OK() {
		t.Fatal("fsck accepted wrong total space")
	}
}

func TestFsckDetectsCorruptExtents(t *testing.T) {
	s, total := fsckStore(t)
	a, _ := s.Create(RootID, "f", TypeFile)
	if _, err := s.AllocLayout("c1", a.ID, 0, 8192); err != nil {
		t.Fatal(err)
	}
	// Corrupt in-memory state directly: duplicate a physical extent under
	// another file.
	b, _ := s.Create(RootID, "g", TypeFile)
	s.ns.Lock()
	src := s.inodes[a.ID].extents[0]
	dup := src
	s.inodes[b.ID].extents = append(s.inodes[b.ID].extents, dup)
	s.ns.Unlock()
	r := s.Fsck(total)
	if r.OK() {
		t.Fatal("fsck missed physical double-reference")
	}
	found := false
	for _, p := range r.Problems {
		if strings.Contains(p, "physical overlap") {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems = %v", r.Problems)
	}
}

func TestFsckDetectsDanglingEntry(t *testing.T) {
	s, total := fsckStore(t)
	a, _ := s.Create(RootID, "f", TypeFile)
	s.ns.Lock()
	delete(s.inodes, a.ID) // corrupt: entry without inode
	s.ns.Unlock()
	if r := s.Fsck(total); r.OK() {
		t.Fatal("fsck missed dangling entry")
	}
}
