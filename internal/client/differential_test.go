package client

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"redbud/internal/fsapi"
)

// TestDifferentialVsMemFS drives Redbud (delayed commit + delegation, the
// most asynchronous configuration) and the in-memory reference file system
// with the same random operation stream and requires byte-identical
// behaviour. This is the strongest functional statement in the suite: no
// amount of background commit reordering may change what the application
// observes.
func TestDifferentialVsMemFS(t *testing.T) {
	for _, mode := range []Mode{SyncCommit, DelayedCommit} {
		t.Run(mode.String(), func(t *testing.T) {
			tc := newCluster(t)
			real := tc.client(mode, 16<<20)
			oracle := fsapi.NewMemFS()
			defer real.Close()

			rng := rand.New(rand.NewSource(0xD1FF))
			type state struct {
				path string
				real fsapi.File
				orc  fsapi.File
			}
			var open []*state
			var closedPaths []string
			nextID := 0

			openPair := func(path string, create bool) *state {
				var rf, of fsapi.File
				var err1, err2 error
				if create {
					rf, err1 = real.Create(path)
					of, err2 = oracle.Create(path)
				} else {
					rf, err1 = real.Open(path)
					of, err2 = oracle.Open(path)
				}
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("open(%q, create=%v): real err %v, oracle err %v", path, create, err1, err2)
				}
				if err1 != nil {
					return nil
				}
				return &state{path: path, real: rf, orc: of}
			}

			for step := 0; step < 400; step++ {
				switch op := rng.Intn(10); {
				case op < 3: // create
					path := fmt.Sprintf("/df-%d", nextID)
					nextID++
					if st := openPair(path, true); st != nil {
						open = append(open, st)
					}

				case op < 6 && len(open) > 0: // write at random offset
					st := open[rng.Intn(len(open))]
					data := make([]byte, rng.Intn(20000)+1)
					for i := range data {
						data[i] = byte(rng.Intn(256))
					}
					off := int64(rng.Intn(50000))
					_, err1 := st.real.WriteAt(data, off)
					_, err2 := st.orc.WriteAt(data, off)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("write: real %v oracle %v", err1, err2)
					}

				case op < 7 && len(open) > 0: // append
					st := open[rng.Intn(len(open))]
					data := bytes.Repeat([]byte{byte(step)}, rng.Intn(5000)+1)
					o1, err1 := st.real.Append(data)
					o2, err2 := st.orc.Append(data)
					if err1 != nil || err2 != nil || o1 != o2 {
						t.Fatalf("append: off %d/%d err %v/%v", o1, o2, err1, err2)
					}

				case op < 9 && len(open) > 0: // read and compare
					st := open[rng.Intn(len(open))]
					if s1, s2 := st.real.Size(), st.orc.Size(); s1 != s2 {
						t.Fatalf("size mismatch on %s: %d vs %d", st.path, s1, s2)
					}
					n := rng.Intn(30000) + 1
					off := int64(rng.Intn(60000))
					b1 := make([]byte, n)
					b2 := make([]byte, n)
					n1, err1 := st.real.ReadAt(b1, off)
					n2, err2 := st.orc.ReadAt(b2, off)
					if err1 != nil || err2 != nil {
						t.Fatalf("read err: %v / %v", err1, err2)
					}
					if n1 != n2 || !bytes.Equal(b1[:n1], b2[:n2]) {
						t.Fatalf("read mismatch on %s at %d len %d: n=%d/%d", st.path, off, n, n1, n2)
					}

				case len(open) > 0: // close (sometimes fsync first)
					i := rng.Intn(len(open))
					st := open[i]
					if rng.Intn(2) == 0 {
						if err := st.real.Sync(); err != nil {
							t.Fatal(err)
						}
					}
					if err := st.real.Close(); err != nil {
						t.Fatal(err)
					}
					st.orc.Close()
					closedPaths = append(closedPaths, st.path)
					open = append(open[:i], open[i+1:]...)

				default: // rename a closed file, or reopen one
					if len(closedPaths) == 0 {
						continue
					}
					i := rng.Intn(len(closedPaths))
					path := closedPaths[i]
					if rng.Intn(2) == 0 {
						newPath := fmt.Sprintf("/renamed-%d", step)
						err1 := real.Rename(path, newPath)
						err2 := oracle.Rename(path, newPath)
						if (err1 == nil) != (err2 == nil) {
							t.Fatalf("rename(%q): real %v oracle %v", path, err1, err2)
						}
						if err1 == nil {
							closedPaths[i] = newPath
						}
						continue
					}
					if st := openPair(path, false); st != nil {
						open = append(open, st)
					}
				}
			}

			// Final sweep: every known path byte-identical through
			// fresh handles.
			if err := real.Drain(); err != nil {
				t.Fatal(err)
			}
			finalPaths := append([]string(nil), closedPaths...)
			for _, st := range open {
				finalPaths = append(finalPaths, st.path)
			}
			for _, path := range finalPaths {
				i1, err1 := real.Stat(path)
				i2, err2 := oracle.Stat(path)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("stat(%q): %v vs %v", path, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if i1.Size != i2.Size {
					t.Fatalf("%s size %d vs %d", path, i1.Size, i2.Size)
				}
				f1, err := real.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				f2, _ := oracle.Open(path)
				b1 := make([]byte, i1.Size)
				b2 := make([]byte, i2.Size)
				n1, err := f1.ReadAt(b1, 0)
				if err != nil {
					t.Fatal(err)
				}
				n2, _ := f2.ReadAt(b2, 0)
				if n1 != n2 || !bytes.Equal(b1[:n1], b2[:n2]) {
					t.Fatalf("%s final content mismatch (%d vs %d bytes)", path, n1, n2)
				}
				f1.Close()
				f2.Close()
			}
		})
	}
}
