package debughttp

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"redbud/internal/obs"
)

func startTestServer(t *testing.T) (*Server, *obs.Registry, *obs.Tracer) {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	s, err := Start(Config{Addr: "127.0.0.1:0", Registry: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, reg, tr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoints(t *testing.T) {
	s, reg, _ := startTestServer(t)
	reg.NewCounter("redbud_test_ops_total", "ops", obs.Labels{"who": "me"}).Add(9)

	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE redbud_test_ops_total counter",
		`redbud_test_ops_total{who="me"} 9`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, "http://"+s.Addr()+"/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if m, ok := snap.Get("redbud_test_ops_total"); !ok || m.Value != 9 {
		t.Fatalf("/metrics.json content: %+v", snap)
	}
}

func TestTraceEndpoints(t *testing.T) {
	s, _, tr := startTestServer(t)
	base := time.Unix(5, 0).UTC()
	for i := 0; i < 5; i++ {
		tr.Record("trk", obs.SpanCommitRPC, uint64(i+1), base, base.Add(time.Millisecond))
	}

	code, body := get(t, "http://"+s.Addr()+"/debug/trace?n=2")
	if code != 200 {
		t.Fatalf("/debug/trace status %d", code)
	}
	var dump struct {
		Total   int64      `json:"total"`
		Dropped int64      `json:"dropped"`
		Spans   []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/trace does not parse: %v", err)
	}
	if dump.Total != 5 || len(dump.Spans) != 2 {
		t.Fatalf("trace dump = total %d, %d spans; want 5, 2", dump.Total, len(dump.Spans))
	}
	// ?n= keeps the newest spans.
	if dump.Spans[1].CommitID != 5 {
		t.Fatalf("newest span commit = %d, want 5", dump.Spans[1].CommitID)
	}

	code, body = get(t, "http://"+s.Addr()+"/debug/trace/perfetto")
	if code != 200 {
		t.Fatalf("/debug/trace/perfetto status %d", code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("perfetto export does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 6 { // 5 spans + 1 thread_name
		t.Fatalf("perfetto events = %d, want 6", len(doc.TraceEvents))
	}
}

func TestIndexHealthzAndPprof(t *testing.T) {
	s, _, _ := startTestServer(t)
	if code, body := get(t, "http://"+s.Addr()+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, body := get(t, "http://"+s.Addr()+"/healthz"); code != 200 || !strings.Contains(body, "ok uptime=") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline status %d", code)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/nope"); code != 404 {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

func TestNilBackendsServeEmpty(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _ := get(t, "http://"+s.Addr()+"/metrics"); code != 200 {
		t.Fatalf("/metrics with nil registry: %d", code)
	}
	code, body := get(t, "http://"+s.Addr()+"/debug/trace")
	if code != 200 {
		t.Fatalf("/debug/trace with nil tracer: %d", code)
	}
	if !strings.Contains(body, `"total": 0`) {
		t.Fatalf("nil tracer dump: %s", body)
	}
}
