// Package lint is redbud's static-analysis suite: a small, dependency-free
// equivalent of golang.org/x/tools/go/analysis (which cannot be vendored
// here) plus eight project-specific analyzers that mechanically enforce the
// invariants DESIGN.md states in prose:
//
//   - lockorder: the namespace → inode-stripe → intent → ns-intent →
//     delegation → journal lock hierarchy of the MDS metadata hot path, and
//     "no tracked lock held across a blocking channel operation or RPC
//     call".
//   - durability: the paper's ordered-write rule — a commit RPC may only be
//     issued on paths dominated by a durability wait.
//   - simclock: virtual-time determinism — no wall-clock time or global
//     math/rand source outside package main, test files, and sites
//     explicitly annotated `//lint:allow wallclock`.
//   - senterr: errors returned from internal/meta, internal/rpc and
//     internal/blockdev wrap package sentinel errors (errors.Is-able)
//     instead of being bare fmt.Errorf strings.
//   - hotpath: functions annotated `//redbud:hotpath` (the 0-allocs/op
//     frame send/recv and journal append paths) stay free of
//     heap-allocating constructs — fmt formatting, unsized append growth,
//     capturing closures.
//   - wiresym: every MarshalWire/UnmarshalWire pair (and PutX/GetX helper
//     pair) produces identical field sequences — order, width, loop and
//     optional nesting — per the wire-schema extractor.
//   - wireevolve: optional wire fields are trailing and guarded by
//     r.Remaining(); v2-gated capability flags are version-clamped before
//     the MDS acts on them.
//   - wirealias: slices from r.BytesRef() alias a pooled receive frame and
//     must not be stored through receivers/parameters/globals or sent on
//     channels without a copy.
//
// The analyzers run over type-checked packages loaded either from the module
// tree (standalone `redbud-lint ./...`), from a `go vet -vettool` config, or
// from testdata fixtures (lintest).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. The API mirrors
// golang.org/x/tools/go/analysis.Analyzer closely enough that the analyzers
// could be ported to a real multichecker without structural change.
type Analyzer struct {
	Name string
	Doc  string
	// AllowToken is the token accepted in `//lint:allow <token>` comments to
	// suppress this analyzer at a site. Defaults to Name.
	AllowToken string
	Run        func(*Pass) error
}

func (a *Analyzer) allowToken() string {
	if a.AllowToken != "" {
		return a.AllowToken
	}
	return a.Name
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file. The invariants the
// suite enforces are about production code; tests deliberately construct
// malformed frames, wall-clock deadlines and bare errors.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Analyzers is the full suite in the order the driver runs them.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockOrder, Durability, SimClock, SentErr, Hotpath, WireSym, WireEvolve, WireAlias}
}

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics, sorted by position. Findings at sites suppressed by
// `//lint:allow <token>` comments (on the same line or the line above) are
// dropped.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allowed := allowedLines(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
		tok := a.allowToken()
		for _, d := range diags {
			if allowed[lineKey{d.Pos.Filename, d.Pos.Line}][tok] ||
				allowed[lineKey{d.Pos.Filename, d.Pos.Line - 1}][tok] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

type lineKey struct {
	file string
	line int
}

// allowedLines indexes `//lint:allow tok1 tok2` comments by file line.
func allowedLines(fset *token.FileSet, files []*ast.File) map[lineKey]map[string]bool {
	out := make(map[lineKey]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				if out[key] == nil {
					out[key] = make(map[string]bool)
				}
				for _, tok := range strings.Fields(rest) {
					// Tokens may carry a trailing justification after
					// a dash: `//lint:allow wallclock — real deployment`.
					if tok == "—" || tok == "-" || tok == "--" {
						break
					}
					out[key][tok] = true
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Shared type-query helpers used by the analyzers.

// namedOrigin unwraps pointers and aliases down to a *types.Named, if any.
func namedOrigin(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (after deref) is the named type typeName
// declared in a package whose *name* (not path) is pkgName. Matching by
// package name rather than import path keeps the analyzers testable against
// fixture packages that mirror the real ones.
func isNamedType(t types.Type, pkgName, typeName string) bool {
	n := namedOrigin(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	if n.Obj().Name() != typeName {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Name() == pkgName
}

// calleeOf resolves the method or function object a call expression invokes,
// or nil for indirect calls (function values, etc.).
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// recvTypeOf returns the receiver type of a method call expression, or nil.
func recvTypeOf(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		return s.Recv()
	}
	return nil
}

// pkgFuncCall reports whether call invokes the package-level function
// pkgPath.funcName (exact import path match, e.g. "time".Now).
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, funcName string, ok bool) {
	obj := calleeOf(info, call)
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, sok := fn.Type().(*types.Signature); sok && sig.Recv() != nil {
		return "", "", false // method, not package function
	}
	return fn.Pkg().Path(), fn.Name(), true
}
