package meta

import (
	"fmt"
	"sync"
)

// LayoutFlags selects the behaviour of a layout lookup. It replaces the v1
// protocol's bare `Write bool`: bit 0 occupies the byte the bool used on the
// wire, so v1 frames decode unchanged and a v1 decoder accepts any v2 frame
// that only uses bit 0.
type LayoutFlags uint8

const (
	// LayoutWrite declares write intent: the MDS allocates extents for the
	// uncovered sub-ranges and publishes them in the intent table.
	LayoutWrite LayoutFlags = 1 << 0
	// LayoutWantUncommitted opts a reader in to early visibility: the
	// lookup may return extents still in StateUncommitted (another
	// client's published write intents) instead of hiding them until the
	// commit lands. Only protocol-v2 sessions may set it; the MDS strips
	// the bit for anyone else.
	LayoutWantUncommitted LayoutFlags = 1 << 1
)

// Has reports whether every bit in bits is set.
func (f LayoutFlags) Has(bits LayoutFlags) bool { return f&bits == bits }

// String renders the flag set for diagnostics.
func (f LayoutFlags) String() string {
	switch {
	case f.Has(LayoutWrite | LayoutWantUncommitted):
		return "write|want-uncommitted"
	case f.Has(LayoutWrite):
		return "write"
	case f.Has(LayoutWantUncommitted):
		return "want-uncommitted"
	case f == 0:
		return "committed-only"
	}
	return "invalid"
}

// intent is one published write intent: an uncommitted extent of a file,
// attributed to the client that allocated it.
type intent struct {
	owner string
	ext   Extent
}

// intentTable indexes every live write intent — uncommitted extents handed
// out by AllocLayout — by file and by owner. It is what a layout lookup with
// LayoutWantUncommitted consults for the file's visible size, and what makes
// rollback (lease expiry, client crash, recovery GC) a direct lookup instead
// of a scan over every inode.
//
// Lifecycle: publish (AllocLayout / RecAlloc replay) → either graduate
// (commit flips the extent to committed) or roll back (ClientGone removes
// the owner's intents and frees the space; Remove drops a dead file's).
//
// Lock hierarchy: mu ranks between the inode stripe locks and delegation.mu
// (namespace → stripe → intent table → delegation → journal reservation).
// It is always taken while holding at least the shared namespace lock and is
// never held across a blocking operation.
type intentTable struct {
	mu      sync.Mutex
	files   map[FileID][]intent
	byOwner map[string]map[FileID]struct{}
}

func newIntentTable() *intentTable {
	return &intentTable{
		files:   make(map[FileID][]intent),
		byOwner: make(map[string]map[FileID]struct{}),
	}
}

// sameExtent matches on identity — (FileOff, Len, Dev, VolOff) — ignoring
// State, so a commit's committed copy matches the published uncommitted one.
func sameExtent(a, b Extent) bool {
	return a.FileOff == b.FileOff && a.Len == b.Len && a.Dev == b.Dev && a.VolOff == b.VolOff
}

// publish records owner's freshly allocated extents for id. An extent that
// duplicates a live intent of a different owner is rejected with a wrapped
// ErrIntentConflict before anything is recorded: the allocator must never
// hand the same space to two clients, so a collision here means accounting
// corruption and the allocation must not proceed.
func (t *intentTable) publish(id FileID, owner string, exts []Extent) error {
	if len(exts) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range exts {
		for _, in := range t.files[id] {
			if in.owner != owner && sameExtent(in.ext, e) {
				return fmt.Errorf("%w: file %d extent [%d,+%d) on dev %d held by %q, republished by %q",
					ErrIntentConflict, id, e.FileOff, e.Len, e.Dev, in.owner, owner)
			}
		}
	}
	for _, e := range exts {
		t.files[id] = append(t.files[id], intent{owner: owner, ext: e})
	}
	set := t.byOwner[owner]
	if set == nil {
		set = make(map[FileID]struct{})
		t.byOwner[owner] = set
	}
	set[id] = struct{}{}
	return nil
}

// graduate removes the intent matching e (a commit flipped it to committed).
// Unknown extents — delegation-carved space the table never saw — are a
// no-op.
func (t *intentTable) graduate(id FileID, e Extent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	list := t.files[id]
	for i, in := range list {
		if !sameExtent(in.ext, e) {
			continue
		}
		list[i] = list[len(list)-1]
		list = list[:len(list)-1]
		if len(list) == 0 {
			delete(t.files, id)
		} else {
			t.files[id] = list
		}
		t.dropOwnerRefLocked(in.owner, id, list)
		return
	}
}

// dropOwnerRefLocked clears owner's per-file index entry once no intent of
// theirs remains on the file. Caller holds t.mu.
func (t *intentTable) dropOwnerRefLocked(owner string, id FileID, remaining []intent) {
	for _, in := range remaining {
		if in.owner == owner {
			return
		}
	}
	if set := t.byOwner[owner]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(t.byOwner, owner)
		}
	}
}

// rollbackOwner removes every intent owner holds and returns them per file.
func (t *intentTable) rollbackOwner(owner string) map[FileID][]Extent {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := t.byOwner[owner]
	if len(set) == 0 {
		delete(t.byOwner, owner)
		return nil
	}
	out := make(map[FileID][]Extent, len(set))
	for id := range set {
		kept := t.files[id][:0:0]
		for _, in := range t.files[id] {
			if in.owner == owner {
				out[id] = append(out[id], in.ext)
				continue
			}
			kept = append(kept, in)
		}
		if len(kept) == 0 {
			delete(t.files, id)
		} else {
			t.files[id] = kept
		}
	}
	delete(t.byOwner, owner)
	return out
}

// dropFile discards all intents of a removed file.
func (t *intentTable) dropFile(id FileID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, in := range t.files[id] {
		t.dropOwnerRefLocked(in.owner, id, nil)
	}
	delete(t.files, id)
}

// ownerOf returns who published the intent matching e on id.
func (t *intentTable) ownerOf(id FileID, e Extent) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, in := range t.files[id] {
		if sameExtent(in.ext, e) {
			return in.owner, true
		}
	}
	return "", false
}

// visibleEnd returns the highest file offset any published intent of id
// reaches — the early-visibility size contribution — or 0 if none.
func (t *intentTable) visibleEnd(id FileID) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var end int64
	for _, in := range t.files[id] {
		if e := in.ext.End(); e > end {
			end = e
		}
	}
	return end
}

// owners lists every client holding at least one intent (recovery GC).
func (t *intentTable) owners() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.byOwner))
	for o := range t.byOwner {
		out = append(out, o)
	}
	return out
}
